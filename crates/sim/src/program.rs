//! The immutable half of the event-driven engine, split out so it can be
//! shared between simulator instances.
//!
//! [`crate::Simulator`] construction does real work: it memoises the
//! voltage model's transcendental delay queries per `(kind, fanout)`
//! pair, flattens the netlist's net→load and cell→input relations into
//! CSR arrays, and precomputes a three-valued truth table per cell kind.
//! None of that depends on simulation state — it is a pure function of
//! the netlist and the library — so it lives here in [`EngineProgram`],
//! an `Arc`-able bundle every simulator instance reads through.
//!
//! Replicating a simulator (one instance per worker thread, as
//! [`crate::ParallelEventSim`] does) therefore costs only the per-worker
//! *mutable* state: net values, the event queue and the activity
//! counters.  The program itself is built once and shared read-only.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use netlist::{Netlist, CellKind};
//! use celllib::Library;
//! use gatesim::{EngineProgram, Logic, Simulator};
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let y = nl.add_cell("inv", CellKind::Inv, &[a]).unwrap();
//! nl.add_output("y", y);
//!
//! let lib = Library::umc_ll();
//! let program = Arc::new(EngineProgram::new(&nl, &lib));
//! // Two independent simulators over one shared program.
//! let mut sim_a = Simulator::from_program(Arc::clone(&program));
//! let mut sim_b = Simulator::from_program(program);
//! sim_a.set_input(a, Logic::One);
//! sim_b.set_input(a, Logic::Zero);
//! sim_a.run_until_quiescent();
//! sim_b.run_until_quiescent();
//! assert_eq!(sim_a.value(y), Logic::Zero);
//! assert_eq!(sim_b.value(y), Logic::One);
//! ```

use celllib::Library;
use netlist::{CellId, CellKind, NetId, Netlist};

use crate::Logic;

/// Marker for nets without a driving cell in [`EngineProgram::driver_of`].
pub(crate) const NO_DRIVER: u32 = u32::MAX;
/// Marker in [`EngineProgram::cell_lut`] for cells without a truth table
/// (flip-flops, which have edge semantics instead).
pub(crate) const NO_LUT: u32 = u32::MAX;

/// The immutable, shareable compilation of a netlist + library pair for
/// event-driven simulation.
///
/// Everything in here is read-only after construction, so the program is
/// `Send + Sync` and can be wrapped in an [`std::sync::Arc`] and shared
/// by any number of [`crate::Simulator`] instances — on one thread or
/// across worker threads.  See the [module documentation](self) for an
/// example.
#[derive(Debug)]
pub struct EngineProgram<'a> {
    pub(crate) netlist: &'a Netlist,
    /// Per-cell transport delay at the library's supply voltage/corner.
    pub(crate) cell_delay_ps: Vec<f64>,
    /// CSR-style fanout: loads of net `n` are
    /// `fanout_loads[fanout_offsets[n] .. fanout_offsets[n + 1]]`.
    pub(crate) fanout_offsets: Vec<u32>,
    pub(crate) fanout_loads: Vec<(CellId, u8)>,
    /// Flattened per-cell data (kind, output-net index, CSR input-net
    /// list), so cell evaluation never chases a `Cell`'s `Vec<NetId>`
    /// pointer: one contiguous read per field.
    pub(crate) cell_kind: Vec<CellKind>,
    pub(crate) cell_output: Vec<u32>,
    pub(crate) cell_input_offsets: Vec<u32>,
    pub(crate) cell_input_nets: Vec<u32>,
    /// Driving cell of each net (`NO_DRIVER` for inputs/undriven nets),
    /// so transition accounting skips the `Net` lookup.
    pub(crate) driver_of: Vec<u32>,
    /// Per-cell offset into `lut_data` (`NO_LUT` for flip-flops).
    pub(crate) cell_lut: Vec<u32>,
    /// Concatenated three-valued truth tables, one per distinct cell
    /// kind: entry `Σ value_i · 3^i` (plus a `3^arity` digit for the
    /// previous output of state-holding C-elements) is the cell's output
    /// for that input combination, precomputed from
    /// [`CellKind::eval_tristate`] at construction.
    pub(crate) lut_data: Vec<Logic>,
    /// Constant (tie-cell) outputs scheduled at time zero by every fresh
    /// simulator instance.
    pub(crate) constants: Vec<(NetId, Logic, f64)>,
    /// Primary inputs in port declaration order, cached so per-operand
    /// protocols ([`crate::run_return_to_zero`]) never re-derive (and
    /// re-allocate) the list on the hot path.
    pub(crate) primary_inputs: Vec<NetId>,
    /// Event-queue granularity every instance starts with.
    pub(crate) bucket_width_ps: f64,
    pub(crate) bucket_count: usize,
}

impl<'a> EngineProgram<'a> {
    /// Compiles `netlist` with delays taken from `library` (at the
    /// library's current supply voltage and corner), sizing the event
    /// queue automatically from the largest cell delay.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &Library) -> Self {
        Self::build(netlist, library, None)
    }

    /// Like [`EngineProgram::new`] with an explicit event-queue
    /// granularity (see [`crate::EventQueue::with_granularity`]).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width_ps` is not finite and positive or if
    /// `bucket_count` is zero.
    #[must_use]
    pub fn with_queue_granularity(
        netlist: &'a Netlist,
        library: &Library,
        bucket_width_ps: f64,
        bucket_count: usize,
    ) -> Self {
        assert!(
            bucket_width_ps.is_finite() && bucket_width_ps > 0.0,
            "bucket width must be finite and positive"
        );
        assert!(bucket_count > 0, "bucket count must be positive");
        Self::build(netlist, library, Some((bucket_width_ps, bucket_count)))
    }

    fn build(netlist: &'a Netlist, library: &Library, granularity: Option<(f64, usize)>) -> Self {
        // The voltage-scaled delay model evaluates transcendentals per
        // query; memoise per (kind, fanout) so construction stays cheap
        // for large netlists (distinct pairs number a few dozen).
        let mut delay_cache: std::collections::HashMap<(CellKind, usize), f64> =
            std::collections::HashMap::new();
        let cell_delay_ps: Vec<f64> = netlist
            .cells()
            .map(|(_, cell)| {
                let fanout = netlist.net(cell.output()).fanout().max(1);
                *delay_cache
                    .entry((cell.kind(), fanout))
                    .or_insert_with(|| library.cell_delay(cell.kind(), fanout))
            })
            .collect();

        // Flatten the per-net load lists into one contiguous CSR array.
        let mut fanout_offsets = Vec::with_capacity(netlist.net_count() + 1);
        let mut fanout_loads = Vec::with_capacity(netlist.nets().map(|(_, n)| n.fanout()).sum());
        fanout_offsets.push(0);
        for (_, net) in netlist.nets() {
            for &(cell, pin) in net.loads() {
                fanout_loads.push((cell, u8::try_from(pin).expect("pin index fits in u8")));
            }
            fanout_offsets.push(u32::try_from(fanout_loads.len()).expect("loads fit in u32"));
        }

        // Flatten per-cell kind/output/inputs the same way.
        let mut cell_kind = Vec::with_capacity(netlist.cell_count());
        let mut cell_output = Vec::with_capacity(netlist.cell_count());
        let mut cell_input_offsets = Vec::with_capacity(netlist.cell_count() + 1);
        let mut cell_input_nets = Vec::new();
        cell_input_offsets.push(0);
        for (_, cell) in netlist.cells() {
            cell_kind.push(cell.kind());
            cell_output.push(u32::try_from(cell.output().index()).expect("nets fit in u32"));
            cell_input_nets.extend(
                cell.inputs()
                    .iter()
                    .map(|n| u32::try_from(n.index()).expect("nets fit in u32")),
            );
            cell_input_offsets
                .push(u32::try_from(cell_input_nets.len()).expect("connections fit in u32"));
        }

        // Precompute each kind's three-valued truth table so the hot loop
        // replaces `eval_tristate` (slice scans over `Option<bool>`) with
        // one table load.  Digit `i` of the index is input `i`'s value
        // (0, 1, X); state-holding C-elements get one extra digit for
        // their previous output.
        let decode = |digit: usize| match digit {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        };
        let mut lut_data: Vec<Logic> = Vec::new();
        let mut kind_offsets: std::collections::HashMap<CellKind, u32> =
            std::collections::HashMap::new();
        let mut cell_lut = Vec::with_capacity(netlist.cell_count());
        for (_, cell) in netlist.cells() {
            let kind = cell.kind();
            if kind == CellKind::Dff {
                cell_lut.push(NO_LUT);
                continue;
            }
            let offset = *kind_offsets.entry(kind).or_insert_with(|| {
                let offset = u32::try_from(lut_data.len()).expect("tables stay small");
                let arity = kind.input_count();
                let digits = arity + usize::from(kind.is_sequential());
                for code in 0..3usize.pow(u32::try_from(digits).expect("small arity")) {
                    let mut rest = code;
                    let mut inputs = [None; CellKind::MAX_INPUTS];
                    for slot in inputs.iter_mut().take(arity) {
                        *slot = decode(rest % 3);
                        rest /= 3;
                    }
                    let prev = if kind.is_sequential() {
                        decode(rest % 3)
                    } else {
                        None
                    };
                    lut_data.push(Logic::from(kind.eval_tristate(&inputs[..arity], prev)));
                }
                offset
            });
            cell_lut.push(offset);
        }

        let driver_of = (0..netlist.net_count())
            .map(|n| {
                netlist
                    .driver_cell(NetId::from_index(n))
                    .map_or(NO_DRIVER, |c| {
                        u32::try_from(c.index()).expect("cells fit in u32")
                    })
            })
            .collect();

        // Constant cells drive their outputs at time zero in every fresh
        // instance; collect them once.
        let constants = netlist
            .cells()
            .filter_map(|(id, cell)| {
                let value = match cell.kind() {
                    CellKind::Tie0 => Logic::Zero,
                    CellKind::Tie1 => Logic::One,
                    _ => return None,
                };
                Some((cell.output(), value, cell_delay_ps[id.index()]))
            })
            .collect();

        // Size the two-level event queue from the largest cell delay: no
        // event is ever scheduled further ahead than one cell delay, so a
        // horizon of a few delays keeps the overflow heap empty.
        let max_delay_ps = cell_delay_ps
            .iter()
            .copied()
            .fold(f64::MIN_POSITIVE, f64::max);
        let (bucket_width_ps, bucket_count) = granularity.unwrap_or((max_delay_ps / 16.0, 64));

        Self {
            netlist,
            cell_delay_ps,
            fanout_offsets,
            fanout_loads,
            cell_kind,
            cell_output,
            cell_input_offsets,
            cell_input_nets,
            driver_of,
            cell_lut,
            lut_data,
            constants,
            primary_inputs: netlist.primary_inputs(),
            bucket_width_ps,
            bucket_count,
        }
    }

    /// Primary inputs of the compiled netlist, in port declaration
    /// order (cached at construction).
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// The netlist this program was compiled from.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Transport delay of `cell` in picoseconds at the compiled supply
    /// voltage and corner.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range.
    #[must_use]
    pub fn cell_delay_ps(&self, cell: CellId) -> f64 {
        self.cell_delay_ps[cell.index()]
    }

    /// Whether the compiled netlist contains only combinational cells
    /// (no flip-flops, no state-holding C-elements).
    ///
    /// Combinational programs have history-independent settled states,
    /// which is what lets [`crate::ParallelEventSim`] replay operands on
    /// replicated instances with bit-identical results.
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.sequential_cell_count() == 0
    }

    /// Number of state-holding cells (flip-flops and C-elements) in the
    /// compiled netlist.
    ///
    /// Sequential programs can still be sharded across replicated
    /// instances when every replayed cycle provably returns the whole
    /// circuit to one quiescent state — the reset-phase contract of
    /// [`crate::ParallelEventSim::assume_reset_phase`].
    #[must_use]
    pub fn sequential_cell_count(&self) -> usize {
        self.cell_kind
            .iter()
            .filter(|kind| kind.is_sequential() || **kind == CellKind::Dff)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_is_send_sync_and_reports_combinationality() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineProgram<'_>>();

        let mut comb = Netlist::new("comb");
        let a = comb.add_input("a");
        let y = comb.add_cell("inv", CellKind::Inv, &[a]).unwrap();
        comb.add_output("y", y);
        let library = Library::umc_ll();
        let program = EngineProgram::new(&comb, &library);
        assert!(program.is_combinational());
        assert!(std::ptr::eq(program.netlist(), &comb));
        let inv = comb.driver_cell(y).unwrap();
        assert!(program.cell_delay_ps(inv) > 0.0);

        let mut seq = Netlist::new("seq");
        let b = seq.add_input("b");
        let c = seq.add_input("c");
        let q = seq.add_cell("cel", CellKind::CElement2, &[b, c]).unwrap();
        seq.add_output("q", q);
        assert!(!EngineProgram::new(&seq, &library).is_combinational());
    }

    #[test]
    #[should_panic(expected = "bucket width must be finite and positive")]
    fn bad_granularity_panics() {
        let nl = Netlist::new("t");
        let library = Library::umc_ll();
        let _ = EngineProgram::with_queue_granularity(&nl, &library, 0.0, 4);
    }
}
