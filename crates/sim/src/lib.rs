//! Event-driven gate-level logic simulator.
//!
//! This crate plays the role of the post-synthesis timing simulation the
//! paper performs: it propagates transitions through a [`netlist::Netlist`]
//! with per-cell delays taken from a [`celllib::Library`] (and therefore a
//! supply voltage), records every output transition for activity-based
//! power estimation, and timestamps net changes so latency from input
//! application to output validity can be measured.
//!
//! The simulator is deliberately simple but faithful where it matters for
//! the paper's claims:
//!
//! * **three-valued logic** (0, 1, X) with controlling-value semantics,
//!   so uninitialised state is visible rather than silently guessed;
//! * **per-cell transport delays** that depend on cell kind, fan-out,
//!   supply voltage and process corner;
//! * **C-elements** simulated as state-holding gates (set on all-1,
//!   reset on all-0, hold otherwise);
//! * **rising-edge D flip-flops** for the synchronous baseline;
//! * **event timestamps** with picosecond resolution for latency
//!   measurement and throughput accounting.
//!
//! The engine is split into an immutable, `Arc`-shareable compilation
//! ([`EngineProgram`]: CSR fanout/input relations, per-kind three-valued
//! truth tables, memoised delays) and per-instance mutable state
//! ([`Simulator`]), so instances replicate cheaply.
//! [`ParallelEventSim`] exploits that to shard independent operands
//! across worker threads with bit-identical results and per-operand
//! latency figures ([`LatencyReport`]) — the paper's figure of merit at
//! bulk-workload scale.
//!
//! [`SlicedSimulator`] evaluates the same programs 64 operand lanes at
//! a time by encoding each net's three-valued state as two `u64`
//! bitplanes; [`run_word_return_to_zero`] drives a whole word through
//! one return-to-zero cycle with per-lane outputs, settle times and
//! event counts bit-identical to the scalar engine (see the
//! [`sliced`] module).
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, CellKind};
//! use celllib::Library;
//! use gatesim::{Simulator, Logic};
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
//! nl.add_output("y", y);
//!
//! let lib = Library::umc_ll();
//! let mut sim = Simulator::new(&nl, &lib);
//! sim.set_input(a, Logic::One);
//! sim.set_input(b, Logic::One);
//! sim.run_until_quiescent();
//! assert_eq!(sim.value(y), Logic::One);
//! assert!(sim.now_ps() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod event;
pub mod fault;
pub mod monitor;
pub mod parallel;
pub mod program;
pub mod sliced;
pub mod testbench;
pub mod value;

pub use engine::{RunOutcome, Simulator, StepOutcome};
pub use event::{Event, EventQueue, SimEvent};
pub use fault::{FaultPlan, SettleError, SettlePhase, SeuPulse};
pub use monitor::{LatencyReport, LatencyStats, PipelineReport, TransitionLog};
pub use parallel::{
    run_return_to_zero, try_run_return_to_zero, OperandRun, ParallelEventSim, ShardingContract,
};
pub use program::EngineProgram;
pub use sliced::{
    lane_mask, run_word_return_to_zero, try_run_word_return_to_zero, SlicedSimulator,
};
pub use testbench::{run_combinational_vectors, run_synchronous_vectors, SyncRunResult};
pub use value::Logic;
