//! Offline drop-in replacement for the slice of the `proptest` crate API
//! used by this workspace (the build environment has no network access).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with both binding forms
//!   (`name: Type` and `name in strategy`) and an optional
//!   `#![proptest_config(...)]` header;
//! * [`ProptestConfig::with_cases`];
//! * [`any`] for types implementing [`Arbitrary`];
//! * integer-range strategies (`0usize..6`, `0u32..256`, …);
//! * [`collection::vec`] with an exact element count;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike the real proptest there is no shrinking and no persisted
//! failure seeds: each `#[test]` runs `cases` deterministic iterations
//! derived from a fixed seed, so failures are reproducible run to run.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` iterations per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic RNG driving each property test.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A fixed-seed generator; every test body starts from the same
    /// stream so failures reproduce deterministically.
    #[must_use]
    pub fn deterministic() -> Self {
        Self(StdRng::seed_from_u64(0x70726F_70746573))
    }
}

/// A source of random values for one binding in a property.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(&mut rng.0) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u8, u16, u32, u64);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing vectors of exactly `count` elements.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    /// Builds a [`VecStrategy`] drawing `count` elements from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.count).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Declares property tests.
///
/// Each function becomes a `#[test]` running `config.cases` iterations
/// with fresh values bound for every parameter.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                $crate::__proptest_bind!{ __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list entry.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::Strategy::sample(&($s), &mut $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
    ($rng:ident; $x:ident in $s:expr) => {
        let $x = $crate::Strategy::sample(&($s), &mut $rng);
    };
    ($rng:ident; $x:ident : $t:ty, $($rest:tt)*) => {
        let $x = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
    ($rng:ident; $x:ident : $t:ty) => {
        let $x = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn typed_bindings_work(a: bool, b: u8) {
            prop_assert!(u16::from(b) <= 255);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn strategy_bindings_work(
            k in 0usize..6,
            xs in collection::vec(any::<bool>(), 5),
            flag: bool,
        ) {
            prop_assert!(k < 6);
            prop_assert_eq!(xs.len(), 5);
            let _ = flag;
        }
    }

    #[test]
    fn cases_actually_vary() {
        let mut rng = crate::TestRng::deterministic();
        let strat = 0u32..1_000_000;
        let a = crate::Strategy::sample(&strat, &mut rng);
        let b = crate::Strategy::sample(&strat, &mut rng);
        assert_ne!(a, b);
    }
}
