//! Offline drop-in replacement for the slice of the `rand` crate API used
//! by this workspace.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched.  This crate provides API-compatible implementations
//! of exactly what the workspace consumes:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable pseudo-random generator
//!   (xoshiro256** seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_bool`] and [`Rng::gen_range`] over integer and float
//!   ranges.
//!
//! The statistical quality is more than sufficient for workload
//! generation and Tsetlin-machine training (the only users); it is **not**
//! a cryptographic generator.  Streams differ from the real `rand` crate,
//! so seeded results are reproducible within this workspace but not
//! across implementations.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator, standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(seed: &mut u64) -> u64 {
            *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                Self::splitmix64(&mut s),
                Self::splitmix64(&mut s),
                Self::splitmix64(&mut s),
                Self::splitmix64(&mut s),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generic_rng_bound_works_unsized() {
        fn flip<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = flip(&mut rng);
    }
}
