//! Offline drop-in replacement for the slice of the `criterion` crate API
//! used by this workspace (the build environment has no network access).
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples; every sample runs the closure enough times to
//! amortise timer overhead.  The harness prints the median, minimum and
//! maximum per-iteration time in a criterion-like one-line format.  There
//! are no HTML reports, statistics beyond the three-point summary, or
//! saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-iteration timing summary of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let summary = run_benchmark(10, f);
        report(&id, summary);
    }
}

/// A named group sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        let summary = run_benchmark(self.sample_size, f);
        report(&id, summary);
    }

    /// Ends the group (kept for API compatibility; reporting is per
    /// benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the workload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(samples: usize, mut f: impl FnMut(&mut Bencher)) -> Summary {
    // Warm-up and calibration: find an iteration count so one sample takes
    // at least ~5 ms, bounded to keep total runtime reasonable.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX)
        })
        .collect();
    per_iter.sort();
    Summary {
        median: per_iter[per_iter.len() / 2],
        min: per_iter[0],
        max: per_iter[per_iter.len() - 1],
    }
}

fn report(id: &str, s: Summary) {
    println!("{id:<50} time: [{:?} {:?} {:?}]", s.min, s.median, s.max);
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut hits = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
