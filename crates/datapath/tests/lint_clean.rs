//! The shipped datapath netlists must be verifier-clean: the pre-flight
//! hook rejects on error-severity findings, so a regression here would
//! brick every inference runtime at construction.

use celllib::Library;
use datapath::{CompletionScheme, DatapathConfig, DatapathOptions, DualRailDatapath};
use tm_lint::{lint_dual_rail, lint_netlist, LintConfig};

fn assert_clean(datapath: &DualRailDatapath, label: &str) {
    let report = lint_dual_rail(
        datapath.circuit(),
        &Library::umc_ll(),
        &LintConfig::default(),
    );
    assert!(
        report.is_clean(),
        "{label} datapath must lint clean:\n{}",
        report.render_text()
    );
}

#[test]
fn reduced_completion_datapath_is_clean() {
    let config = DatapathConfig::new(12, 8).expect("config");
    let datapath = DualRailDatapath::generate(&config).expect("generate");
    assert_clean(&datapath, "reduced-completion");
}

#[test]
fn full_completion_datapath_is_clean() {
    let config = DatapathConfig::new(12, 8).expect("config");
    let mut options = DatapathOptions::paper_defaults();
    options.completion = CompletionScheme::Full;
    let datapath = DualRailDatapath::generate_with(&config, options).expect("generate");
    assert_clean(&datapath, "full-completion");
}

#[test]
fn small_and_wide_configs_are_clean() {
    for (features, clauses) in [(4, 4), (16, 8), (20, 6)] {
        let config = DatapathConfig::new(features, clauses).expect("config");
        let datapath = DualRailDatapath::generate(&config).expect("generate");
        assert_clean(&datapath, &format!("{features}f x {clauses}c"));
    }
}

#[test]
fn single_rail_golden_netlist_is_structurally_clean() {
    let config = DatapathConfig::new(12, 8).expect("config");
    let single = datapath::SingleRailDatapath::generate(&config).expect("generate");
    let report = lint_netlist(single.netlist());
    assert!(
        report.is_clean(),
        "single-rail golden netlist must pass the structural family:\n{}",
        report.render_text()
    );
}
