//! Event-driven inference with per-operand latency, sharded across
//! worker threads.
//!
//! The batch spine answers "how many samples per second"; this module
//! answers the paper's actual question — **how long does each inference
//! take?**  Every operand is driven through the combinational golden
//! model ([`crate::BatchGoldenModel`]) on the event-driven simulator as
//! one return-to-zero cycle (all-zero spacer → settle → operand →
//! settle), so the injection→settle time *is* the data-dependent latency
//! the asynchronous datapath claims: each inference completes exactly as
//! fast as its operand allows.
//!
//! A single event-driven instance is the workspace's slowest path, so
//! the operand stream is sharded across an [`exec::Executor`]'s workers
//! by [`gatesim::ParallelEventSim`]: the engine compilation is shared
//! read-only (`Arc<EngineProgram>`), each worker owns a private
//! simulator, and results merge in operand order — outcomes and latency
//! reports are bit-identical to a streamed single instance at any thread
//! count (property-tested at threads {1, 2, 7}).
//!
//! # Example
//!
//! ```
//! use celllib::Library;
//! use datapath::{BatchGoldenModel, DatapathConfig, EventDrivenInference, InferenceWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = DatapathConfig::new(4, 2)?;
//! let model = BatchGoldenModel::generate(&config)?;
//! let library = Library::umc_ll();
//! let sim = EventDrivenInference::new(&model, &library, 2);
//!
//! let workload = InferenceWorkload::random(&config, 12, 0.7, 42)?;
//! let run = sim.run_workload(&workload)?;
//! assert_eq!(&run.outcomes, workload.expected());
//! // Per-operand latency in picoseconds — the paper's figure of merit.
//! assert_eq!(run.latency.count(), 12);
//! assert!(run.latency.max_ps() > 0.0);
//! # Ok(())
//! # }
//! ```

use celllib::Library;
use exec::Executor;
use gatesim::{LatencyReport, Logic, OperandRun, ParallelEventSim};
use tsetlin::ExcludeMasks;

use crate::batch::{check_masks, BatchGoldenModel};
use crate::reference::{ComparatorDecision, InferenceOutcome};
use crate::workload::InferenceWorkload;
use crate::{DatapathConfig, DatapathError};

/// Result of an event-driven workload run: one golden-comparable outcome
/// per operand plus the per-operand latency report.
#[derive(Clone, Debug, PartialEq)]
pub struct EventDrivenRun {
    /// Decoded inference outcomes, in operand order.
    pub outcomes: Vec<InferenceOutcome>,
    /// Injection→settle latency of every operand, in operand order, with
    /// min/median/max/histogram summaries.
    pub latency: LatencyReport,
}

/// Event-driven inference over the combinational golden model with the
/// operand stream sharded across worker threads.
///
/// Construction compiles the netlist once; `run_workload` takes `&self`
/// (all mutable state is per worker), so one instance can serve many
/// workloads.  See the [module documentation](self) for the determinism
/// contract and an example.
#[derive(Debug)]
pub struct EventDrivenInference<'a> {
    sim: ParallelEventSim<'a>,
    config: DatapathConfig,
}

impl<'a> EventDrivenInference<'a> {
    /// Compiles the golden-model netlist for event-driven simulation
    /// (delays from `library` at its current supply voltage and corner)
    /// and prepares `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(model: &'a BatchGoldenModel, library: &Library, threads: usize) -> Self {
        Self::with_executor(model, library, Executor::new(threads))
    }

    /// Like [`EventDrivenInference::new`] with an explicit executor.
    #[must_use]
    pub fn with_executor(
        model: &'a BatchGoldenModel,
        library: &Library,
        executor: Executor,
    ) -> Self {
        use std::sync::Arc;
        let program = Arc::new(gatesim::EngineProgram::new(model.netlist(), library));
        Self {
            sim: ParallelEventSim::from_program(program, executor),
            config: *model.config(),
        }
    }

    /// Number of worker threads the operand stream is sharded across.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.sim.threads()
    }

    /// Routes every worker's engine instruments into `registry` under
    /// `prefix` (see [`ParallelEventSim::set_metrics`]): scalar workers
    /// flush `"<prefix>.scalar.*"`, sliced workers
    /// `"<prefix>.sliced.*"`, and snapshots are bit-identical at any
    /// thread count.
    pub fn set_metrics(
        &mut self,
        registry: &std::sync::Arc<tm_obs::MetricsRegistry>,
        prefix: &str,
    ) {
        self.sim.set_metrics(registry, prefix);
    }

    /// Stops routing metrics; future runs revert to the zero-overhead
    /// disabled mode.
    pub fn clear_metrics(&mut self) {
        self.sim.clear_metrics();
    }

    /// Runs every operand of `workload` through a return-to-zero
    /// event-driven cycle and returns the decoded outcomes (comparable
    /// with [`InferenceWorkload::expected`]) plus the per-operand
    /// latency report — both in operand order and bit-identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns width mismatches for masks that do not match the model's
    /// configuration and decode failures if a settled operand's
    /// comparator outputs are not one-hot or any output is X.
    pub fn run_workload(
        &self,
        workload: &InferenceWorkload,
    ) -> Result<EventDrivenRun, DatapathError> {
        self.run_features(workload.masks(), workload.feature_vectors())
    }

    /// Runs an explicit batch of feature vectors (owned `&[Vec<bool>]`
    /// or borrowed `&[&[bool]]`, e.g. a serving micro-batch) against
    /// `masks` — one return-to-zero event-driven cycle per vector,
    /// sharded across workers — and returns decoded outcomes plus the
    /// per-operand latency report, both in input order.
    ///
    /// # Errors
    ///
    /// See [`EventDrivenInference::run_workload`].
    pub fn run_features<V: AsRef<[bool]>>(
        &self,
        masks: &ExcludeMasks,
        feature_vectors: &[V],
    ) -> Result<EventDrivenRun, DatapathError> {
        check_masks(&self.config, masks)?;
        for vector in feature_vectors {
            if vector.as_ref().len() != self.config.features() {
                return Err(DatapathError::WidthMismatch {
                    what: "feature vector",
                    expected: self.config.features(),
                    got: vector.as_ref().len(),
                });
            }
        }
        let operands = operand_bit_vectors(&self.config, masks, feature_vectors);
        let (runs, latency) = self.sim.run_operands_with_report(&operands);
        let outcomes = runs
            .iter()
            .enumerate()
            .map(|(k, run)| decode_operand_run(run, k))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EventDrivenRun { outcomes, latency })
    }

    /// Like [`EventDrivenInference::run_workload`], but on the
    /// bit-sliced event kernel ([`gatesim::SlicedSimulator`]): operands
    /// are packed 64 to a word, every merged event advances all lanes
    /// of its word at once, and words are sharded across workers.
    /// Outcomes and the latency report are bit-identical to
    /// [`EventDrivenInference::run_workload`] — the sliced kernel
    /// reproduces the scalar engine per lane exactly.
    ///
    /// # Errors
    ///
    /// See [`EventDrivenInference::run_workload`].
    pub fn run_workload_sliced(
        &self,
        workload: &InferenceWorkload,
    ) -> Result<EventDrivenRun, DatapathError> {
        self.run_features_sliced(workload.masks(), workload.feature_vectors())
    }

    /// Like [`EventDrivenInference::run_features`], but on the
    /// bit-sliced event kernel; see
    /// [`EventDrivenInference::run_workload_sliced`].
    ///
    /// # Errors
    ///
    /// See [`EventDrivenInference::run_workload`].
    pub fn run_features_sliced<V: AsRef<[bool]>>(
        &self,
        masks: &ExcludeMasks,
        feature_vectors: &[V],
    ) -> Result<EventDrivenRun, DatapathError> {
        check_masks(&self.config, masks)?;
        for vector in feature_vectors {
            if vector.as_ref().len() != self.config.features() {
                return Err(DatapathError::WidthMismatch {
                    what: "feature vector",
                    expected: self.config.features(),
                    got: vector.as_ref().len(),
                });
            }
        }
        let operands = operand_bit_vectors(&self.config, masks, feature_vectors);
        let (runs, latency) = self.sim.run_operands_sliced_with_report(&operands);
        let outcomes = runs
            .iter()
            .enumerate()
            .map(|(k, run)| decode_operand_run(run, k))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EventDrivenRun { outcomes, latency })
    }
}

/// Flattens each feature vector with the shared exclude masks into the
/// golden model's primary-input order (features, then the positive bank,
/// then the negative bank).
///
/// Public so that harnesses driving the event engines directly (e.g.
/// the fault-injection campaign, which installs a
/// [`gatesim::FaultPlan`] before running) can produce the exact operand
/// encoding [`EventDrivenInference`] uses.
pub fn operand_bit_vectors<V: AsRef<[bool]>>(
    config: &DatapathConfig,
    masks: &ExcludeMasks,
    feature_vectors: &[V],
) -> Vec<Vec<bool>> {
    let mut mask_bits = Vec::with_capacity(config.data_input_count() - config.features());
    for bank in [masks.positive(), masks.negative()] {
        for mask in bank {
            mask_bits.extend_from_slice(mask);
        }
    }
    feature_vectors
        .iter()
        .map(|features| {
            let mut bits = Vec::with_capacity(config.data_input_count());
            bits.extend_from_slice(features.as_ref());
            bits.extend_from_slice(&mask_bits);
            bits
        })
        .collect()
}

/// Decodes one settled operand run (primary outputs `less`, `equal`,
/// `greater`, then the two 4-bit vote counts, LSB first) into an
/// [`InferenceOutcome`].
///
/// Any X output and any non-one-hot comparator pattern is a
/// [`DatapathError::DecodeFailure`] — on a healthy circuit neither can
/// occur, so a decode failure on a faulted run counts as the datapath
/// *detecting* the fault.  Public for harnesses that run the event
/// engines directly (e.g. the fault-injection campaign).
pub fn decode_operand_run(
    run: &OperandRun,
    operand: usize,
) -> Result<InferenceOutcome, DatapathError> {
    let bit = |value: Logic, what: &str| -> Result<bool, DatapathError> {
        value.to_option().ok_or_else(|| {
            DatapathError::DecodeFailure(format!("operand {operand}: {what} settled to X"))
        })
    };
    // An X on any comparator rail is a decode failure in its own right —
    // treating it as "inactive" could fake a one-hot pattern.
    let mut active = Vec::with_capacity(1);
    for i in 0..3 {
        if bit(run.outputs[i], "comparator output")? {
            active.push(i);
        }
    }
    let &[index] = active.as_slice() else {
        return Err(DatapathError::DecodeFailure(format!(
            "operand {operand}: expected exactly one active comparator output, got {active:?}"
        )));
    };
    let decode_count =
        |range: std::ops::Range<usize>, what: &str| -> Result<usize, DatapathError> {
            range
                .clone()
                .zip(0..)
                .try_fold(0usize, |acc, (slot, weight)| {
                    Ok(acc + (usize::from(bit(run.outputs[slot], what)?) << weight))
                })
        };
    let positive_votes = decode_count(3..7, "positive vote count")?;
    let negative_votes = decode_count(7..11, "negative vote count")?;
    let decision = ComparatorDecision::from_index(index)
        .expect("index comes from a three-element enumeration");
    Ok(InferenceOutcome {
        positive_votes,
        negative_votes,
        decision,
        in_class: decision != ComparatorDecision::Less,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_driven_outcomes_match_golden_at_several_thread_counts() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 17, 0.7, 9).unwrap();

        let reference = EventDrivenInference::new(&model, &library, 1)
            .run_workload(&workload)
            .unwrap();
        assert_eq!(reference.outcomes.as_slice(), workload.expected());
        assert_eq!(reference.latency.count(), workload.len());
        assert!(reference.latency.max_ps() > 0.0);
        assert!(reference.latency.min_ps() <= reference.latency.median_ps());

        for threads in [2, 7] {
            let sim = EventDrivenInference::new(&model, &library, threads);
            assert_eq!(sim.threads(), threads);
            let run = sim.run_workload(&workload).unwrap();
            assert_eq!(run, reference, "threads = {threads}");
        }
    }

    /// The sliced kernel reproduces the scalar event engine per lane
    /// exactly, so the whole run — outcomes and every per-operand
    /// latency — is bit-identical, at any thread count and across
    /// partial final words (77 operands = one full word + 13 lanes).
    #[test]
    fn sliced_runs_are_bit_identical_to_scalar_runs() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 77, 0.7, 9).unwrap();

        let reference = EventDrivenInference::new(&model, &library, 1)
            .run_workload(&workload)
            .unwrap();
        for threads in [1, 2, 7] {
            let sim = EventDrivenInference::new(&model, &library, threads);
            let run = sim.run_workload_sliced(&workload).unwrap();
            assert_eq!(run, reference, "threads = {threads}");
        }
    }

    #[test]
    fn sliced_wrong_width_feature_vectors_are_errors_not_panics() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let sim = EventDrivenInference::new(&model, &library, 1);
        let workload = InferenceWorkload::random(&config, 1, 0.5, 1).unwrap();
        let short = vec![vec![true, false]];
        let err = sim
            .run_features_sliced(workload.masks(), &short)
            .unwrap_err();
        assert!(matches!(
            err,
            DatapathError::WidthMismatch {
                what: "feature vector",
                ..
            }
        ));
    }

    #[test]
    fn latency_depends_on_the_operand() {
        // The figure-of-merit property: different operands settle at
        // different times, so the report spreads (this is what the
        // early-propagative design exploits).
        let config = DatapathConfig::new(6, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 32, 0.6, 3).unwrap();
        let run = EventDrivenInference::new(&model, &library, 2)
            .run_workload(&workload)
            .unwrap();
        assert!(
            run.latency.min_ps() < run.latency.max_ps(),
            "expected a data-dependent latency spread, got min == max == {}",
            run.latency.min_ps()
        );
    }

    #[test]
    fn x_outputs_are_decode_failures_not_fake_one_hots() {
        // [One, X, Zero, ...]: counting X as "inactive" would decode as a
        // confident `Less`; the contract says any X fails the decode.
        let mut outputs = vec![Logic::Zero; 11];
        outputs[0] = Logic::One;
        outputs[1] = Logic::Unknown;
        let run = OperandRun {
            outputs,
            latency_ps: 1.0,
            events: 1,
        };
        let err = decode_operand_run(&run, 0).unwrap_err();
        assert!(matches!(err, DatapathError::DecodeFailure(_)));

        // Same for an X vote-count bit behind a valid one-hot comparator.
        let mut outputs = vec![Logic::Zero; 11];
        outputs[2] = Logic::One;
        outputs[5] = Logic::Unknown;
        let run = OperandRun {
            outputs,
            latency_ps: 1.0,
            events: 1,
        };
        assert!(decode_operand_run(&run, 0).is_err());
    }

    #[test]
    fn mismatched_masks_are_rejected() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let other = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let sim = EventDrivenInference::new(&model, &library, 2);
        let workload = InferenceWorkload::random(&other, 4, 0.5, 1).unwrap();
        assert!(sim.run_workload(&workload).is_err());
    }

    #[test]
    fn wrong_width_feature_vectors_are_errors_not_panics() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let sim = EventDrivenInference::new(&model, &library, 1);
        let workload = InferenceWorkload::random(&config, 1, 0.5, 1).unwrap();
        let short = vec![vec![true, false]];
        let err = sim.run_features(workload.masks(), &short).unwrap_err();
        assert!(matches!(
            err,
            DatapathError::WidthMismatch {
                what: "feature vector",
                ..
            }
        ));
    }
}
