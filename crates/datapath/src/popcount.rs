//! Population count: counting clause votes.
//!
//! The paper bases its counter on Dalalah's optimised eight-input
//! bit-counting architecture, built from dual-rail half adders, full
//! adders and OR gates (the paper also needs two spacer inverters around
//! its inverted-spacer full-adder carry chain; this reproduction's full
//! adder keeps its carries in the uniform all-zero-spacer domain, so no
//! conversion is needed — see `DualRailNetlist::full_adder`).
//!
//! The structure used here:
//!
//! ```text
//! level 1: four half adders pair up the eight inputs  -> four 2-bit sums
//! level 2: two 2-bit + 2-bit adders; because the two carries of each
//!          column are mutually exclusive a full adder is replaced by two
//!          half adders and an OR gate (Dalalah's optimisation)
//! level 3: one 3-bit + 3-bit adder (half adder, then two full adders)
//! ```
//!
//! A single-rail version with XOR-based adders is provided for the
//! synchronous baseline.

use dualrail::{DualRailNetlist, DualRailSignal, SpacerPolarity};
use netlist::{CellKind, NetId, Netlist};

use crate::DatapathError;

/// Builds the dual-rail eight-input population counter and returns the
/// four output bits, least significant first (all all-zero spacer).
///
/// Fewer than eight inputs are padded with constant-zero signals; more
/// than eight are rejected.
///
/// # Errors
///
/// Returns a width-mismatch error for more than eight inputs and
/// propagates construction errors.
pub fn dual_rail_popcount8(
    dr: &mut DualRailNetlist,
    prefix: &str,
    inputs: &[DualRailSignal],
) -> Result<[DualRailSignal; 4], DatapathError> {
    if inputs.len() > 8 {
        return Err(DatapathError::WidthMismatch {
            what: "population counter inputs",
            expected: 8,
            got: inputs.len(),
        });
    }
    let mut bits = inputs.to_vec();
    for pad in bits.len()..8 {
        bits.push(dr.constant(
            &format!("{prefix}_pad{pad}"),
            false,
            SpacerPolarity::AllZero,
        )?);
    }

    // Level 1: pair the inputs with half adders.
    let mut sums = Vec::with_capacity(4);
    let mut carries = Vec::with_capacity(4);
    for i in 0..4 {
        let (s, c) = dr.half_adder(&format!("{prefix}_l1ha{i}"), bits[2 * i], bits[2 * i + 1])?;
        sums.push(s);
        carries.push(c);
    }

    // Level 2: add two 2-bit numbers (sum, carry) pairs.  The two carries
    // produced in the middle column are mutually exclusive, so an OR gate
    // combines them instead of a third adder (Dalalah's optimisation).
    let mut level2 = Vec::with_capacity(2);
    for g in 0..2 {
        let (bit0, c0) =
            dr.half_adder(&format!("{prefix}_l2g{g}ha0"), sums[2 * g], sums[2 * g + 1])?;
        let (t, c1) = dr.half_adder(
            &format!("{prefix}_l2g{g}ha1"),
            carries[2 * g],
            carries[2 * g + 1],
        )?;
        let (bit1, c2) = dr.half_adder(&format!("{prefix}_l2g{g}ha2"), t, c0)?;
        let bit2 = dr.or2(&format!("{prefix}_l2g{g}or"), c1, c2)?;
        level2.push([bit0, bit1, bit2]);
    }

    // Level 3: add the two 3-bit numbers with a half adder and two full
    // adders.  The paper's counter keeps its full-adder carry chain in an
    // inverted-spacer domain bracketed by two explicit spacer inverters;
    // this reproduction's full adder uses the uniform all-zero spacer on
    // its carries (see `DualRailNetlist::full_adder`), so the counter
    // needs no polarity conversion here.
    let [a0, a1, a2] = level2[0];
    let [b0, b1, b2] = level2[1];
    let (y0, k0) = dr.half_adder(&format!("{prefix}_l3ha"), a0, b0)?;
    let (y1, k1) = dr.full_adder(&format!("{prefix}_l3fa0"), a1, b1, k0)?;
    let (y2, y3) = dr.full_adder(&format!("{prefix}_l3fa1"), a2, b2, k1)?;

    Ok([y0, y1, y2, y3])
}

/// Builds a single-rail eight-input population counter (XOR-based half
/// and full adders) for the synchronous baseline; returns the four output
/// bits, least significant first.
///
/// # Errors
///
/// Returns a width-mismatch error for more than eight inputs and
/// propagates construction errors.
pub fn single_rail_popcount8(
    nl: &mut Netlist,
    prefix: &str,
    inputs: &[NetId],
) -> Result<[NetId; 4], DatapathError> {
    if inputs.len() > 8 {
        return Err(DatapathError::WidthMismatch {
            what: "population counter inputs",
            expected: 8,
            got: inputs.len(),
        });
    }
    let mut bits = inputs.to_vec();
    for pad in bits.len()..8 {
        bits.push(nl.add_cell(format!("{prefix}_pad{pad}"), CellKind::Tie0, &[])?);
    }

    let half_adder = |nl: &mut Netlist,
                      name: String,
                      a: NetId,
                      b: NetId|
     -> Result<(NetId, NetId), DatapathError> {
        let sum = nl.add_cell(format!("{name}_xor"), CellKind::Xor2, &[a, b])?;
        let carry = nl.add_cell(format!("{name}_and"), CellKind::And2, &[a, b])?;
        Ok((sum, carry))
    };
    let full_adder = |nl: &mut Netlist,
                      name: String,
                      a: NetId,
                      b: NetId,
                      c: NetId|
     -> Result<(NetId, NetId), DatapathError> {
        let t = nl.add_cell(format!("{name}_xor0"), CellKind::Xor2, &[a, b])?;
        let sum = nl.add_cell(format!("{name}_xor1"), CellKind::Xor2, &[t, c])?;
        let carry = nl.add_cell(format!("{name}_maj"), CellKind::Maj3, &[a, b, c])?;
        Ok((sum, carry))
    };

    let mut sums = Vec::new();
    let mut carries = Vec::new();
    for i in 0..4 {
        let (s, c) = half_adder(
            nl,
            format!("{prefix}_l1ha{i}"),
            bits[2 * i],
            bits[2 * i + 1],
        )?;
        sums.push(s);
        carries.push(c);
    }
    let mut level2 = Vec::new();
    for g in 0..2 {
        let (bit0, c0) = half_adder(
            nl,
            format!("{prefix}_l2g{g}ha0"),
            sums[2 * g],
            sums[2 * g + 1],
        )?;
        let (t, c1) = half_adder(
            nl,
            format!("{prefix}_l2g{g}ha1"),
            carries[2 * g],
            carries[2 * g + 1],
        )?;
        let (bit1, c2) = half_adder(nl, format!("{prefix}_l2g{g}ha2"), t, c0)?;
        let bit2 = nl.add_cell(format!("{prefix}_l2g{g}or"), CellKind::Or2, &[c1, c2])?;
        level2.push([bit0, bit1, bit2]);
    }
    let [a0, a1, a2] = level2[0];
    let [b0, b1, b2] = level2[1];
    let (y0, k0) = half_adder(nl, format!("{prefix}_l3ha"), a0, b0)?;
    let (y1, k1) = full_adder(nl, format!("{prefix}_l3fa0"), a1, b1, k0)?;
    let (y2, y3) = full_adder(nl, format!("{prefix}_l3fa1"), a2, b2, k1)?;
    Ok([y0, y1, y2, y3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualrail::DualRailValue;
    use netlist::Evaluator;
    use std::collections::HashMap;

    fn decode_count(values: &[bool], outputs: &[DualRailSignal; 4]) -> usize {
        outputs
            .iter()
            .enumerate()
            .map(|(i, sig)| {
                let v = DualRailValue::decode(
                    values[sig.positive.index()].into(),
                    values[sig.negative.index()].into(),
                    sig.polarity,
                );
                match v {
                    DualRailValue::Valid(true) => 1 << i,
                    DualRailValue::Valid(false) => 0,
                    other => panic!("output bit {i} is {other:?}"),
                }
            })
            .sum()
    }

    #[test]
    fn dual_rail_popcount_counts_every_pattern() {
        let mut dr = DualRailNetlist::new("pc");
        let inputs: Vec<DualRailSignal> =
            (0..8).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let outputs = dual_rail_popcount8(&mut dr, "pc", &inputs).unwrap();
        let eval = Evaluator::new(dr.netlist()).unwrap();

        for pattern in 0..256u32 {
            let mut map = HashMap::new();
            for (i, sig) in inputs.iter().enumerate() {
                let bit = pattern & (1 << i) != 0;
                let (p, n) = DualRailValue::encode_valid(bit, sig.polarity);
                map.insert(sig.positive, p);
                map.insert(sig.negative, n);
            }
            let values = eval.eval(&map);
            assert_eq!(
                decode_count(&values, &outputs),
                pattern.count_ones() as usize,
                "pattern {pattern:08b}"
            );
        }
    }

    #[test]
    fn dual_rail_popcount_propagates_spacer() {
        let mut dr = DualRailNetlist::new("pc");
        let inputs: Vec<DualRailSignal> =
            (0..8).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let outputs = dual_rail_popcount8(&mut dr, "pc", &inputs).unwrap();
        let eval = Evaluator::new(dr.netlist()).unwrap();
        let mut map = HashMap::new();
        for sig in &inputs {
            let (p, n) = DualRailValue::encode_spacer(sig.polarity);
            map.insert(sig.positive, p);
            map.insert(sig.negative, n);
        }
        let values = eval.eval(&map);
        for (i, sig) in outputs.iter().enumerate() {
            let v = DualRailValue::decode(
                values[sig.positive.index()].into(),
                values[sig.negative.index()].into(),
                sig.polarity,
            );
            assert_eq!(v, DualRailValue::Spacer, "output bit {i}");
        }
    }

    #[test]
    fn narrow_inputs_are_padded() {
        let mut dr = DualRailNetlist::new("pc");
        let inputs: Vec<DualRailSignal> =
            (0..3).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let outputs = dual_rail_popcount8(&mut dr, "pc3", &inputs).unwrap();
        let eval = Evaluator::new(dr.netlist()).unwrap();
        for pattern in 0..8u32 {
            let mut map = HashMap::new();
            for (i, sig) in inputs.iter().enumerate() {
                let (p, n) = DualRailValue::encode_valid(pattern & (1 << i) != 0, sig.polarity);
                map.insert(sig.positive, p);
                map.insert(sig.negative, n);
            }
            let values = eval.eval(&map);
            assert_eq!(
                decode_count(&values, &outputs),
                pattern.count_ones() as usize
            );
        }
    }

    #[test]
    fn too_many_inputs_are_rejected() {
        let mut dr = DualRailNetlist::new("pc");
        let inputs: Vec<DualRailSignal> =
            (0..9).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        assert!(matches!(
            dual_rail_popcount8(&mut dr, "pc", &inputs),
            Err(DatapathError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn dual_rail_popcount_is_unate_and_spacer_uniform() {
        let mut dr = DualRailNetlist::new("pc");
        let inputs: Vec<DualRailSignal> =
            (0..8).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let outputs = dual_rail_popcount8(&mut dr, "pc", &inputs).unwrap();
        assert!(dualrail::check_unate(dr.netlist()).is_ok());
        // Every output stays in the all-zero spacer domain, so the counter
        // composes directly with the comparator.
        for bit in outputs {
            assert_eq!(bit.polarity, dualrail::SpacerPolarity::AllZero);
        }
    }

    #[test]
    fn single_rail_popcount_counts_every_pattern() {
        let mut nl = Netlist::new("pc_sr");
        let inputs: Vec<NetId> = (0..8).map(|i| nl.add_input(format!("b{i}"))).collect();
        let outputs = single_rail_popcount8(&mut nl, "pc", &inputs).unwrap();
        for (i, &o) in outputs.iter().enumerate() {
            nl.add_output(format!("y{i}"), o);
        }
        let eval = Evaluator::new(&nl).unwrap();
        for pattern in 0..256u32 {
            let bits: Vec<bool> = (0..8).map(|i| pattern & (1 << i) != 0).collect();
            let out = eval.eval_vector(&bits);
            let count: usize = out
                .iter()
                .enumerate()
                .map(|(i, &b)| usize::from(b) << i)
                .sum();
            assert_eq!(
                count,
                pattern.count_ones() as usize,
                "pattern {pattern:08b}"
            );
        }
    }
}
