//! Error type for datapath generation and decoding.

use std::error::Error;
use std::fmt;

use dualrail::DualRailError;
use netlist::NetlistError;

/// Errors produced while generating or exercising inference datapaths.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DatapathError {
    /// A configuration parameter was outside the supported range.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// Dual-rail circuit construction failed.
    DualRail(DualRailError),
    /// Single-rail netlist construction failed.
    Netlist(NetlistError),
    /// A feature vector or mask had the wrong width for this datapath.
    WidthMismatch {
        /// What was being supplied.
        what: &'static str,
        /// The width the datapath expects.
        expected: usize,
        /// The width supplied.
        got: usize,
    },
    /// The circuit produced an output that could not be decoded (e.g. a
    /// missing 1-of-3 comparator group).
    DecodeFailure(String),
}

impl fmt::Display for DatapathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatapathError::InvalidConfig { name, reason } => {
                write!(f, "invalid datapath configuration for {name}: {reason}")
            }
            DatapathError::DualRail(e) => write!(f, "dual-rail construction failed: {e}"),
            DatapathError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
            DatapathError::WidthMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} has width {got} but the datapath expects {expected}"
            ),
            DatapathError::DecodeFailure(reason) => {
                write!(f, "failed to decode datapath output: {reason}")
            }
        }
    }
}

impl Error for DatapathError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatapathError::DualRail(e) => Some(e),
            DatapathError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DualRailError> for DatapathError {
    fn from(value: DualRailError) -> Self {
        DatapathError::DualRail(value)
    }
}

impl From<NetlistError> for DatapathError {
    fn from(value: NetlistError) -> Self {
        DatapathError::Netlist(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let err: DatapathError = NetlistError::DuplicateName("x".into()).into();
        assert!(err.to_string().contains("netlist"));
        let err = DatapathError::WidthMismatch {
            what: "feature vector",
            expected: 8,
            got: 4,
        };
        assert!(err.to_string().contains("feature vector"));
        assert!(err.to_string().contains('8'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DatapathError>();
    }
}
