//! The synchronous single-rail baseline datapath.
//!
//! This is the design the paper compares against: the same clause
//! calculation, population count and magnitude comparison implemented
//! with conventional Boolean gates (including the non-unate XOR adders a
//! synthesis tool would infer), with D flip-flops registering every
//! primary input and the three comparator outputs.  Its latency is the
//! clock period, which static timing analysis derives from the worst
//! combinational path.

use netlist::{CellKind, NetId, Netlist};
use tsetlin::ExcludeMasks;

use crate::clause_logic::single_rail_clause;
use crate::comparator::single_rail_comparator;
use crate::popcount::single_rail_popcount8;
use crate::{DatapathConfig, DatapathError};

/// The generated synchronous single-rail datapath.
#[derive(Clone, Debug)]
pub struct SingleRailDatapath {
    netlist: Netlist,
    config: DatapathConfig,
}

impl SingleRailDatapath {
    /// Generates the registered synchronous datapath.
    ///
    /// Primary inputs: `clk`, the features `f*`, then the positive-bank
    /// exclude signals `ep*`, then the negative-bank excludes `en*`.
    /// Primary outputs: the registered comparator wires `less`, `equal`,
    /// `greater`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn generate(config: &DatapathConfig) -> Result<Self, DatapathError> {
        let mut nl = Netlist::new("tm_inference_single_rail");
        let clk = nl.add_input("clk");
        let clauses = config.clauses_per_polarity();
        let literals = config.literals_per_clause();

        let register =
            |nl: &mut Netlist, name: String, data: NetId| -> Result<NetId, DatapathError> {
                Ok(nl.add_cell(name, CellKind::Dff, &[data, clk])?)
            };

        // Registered inputs.
        let raw_features: Vec<NetId> = (0..config.features())
            .map(|m| nl.add_input(format!("f{m}")))
            .collect();
        let features: Vec<NetId> = raw_features
            .iter()
            .enumerate()
            .map(|(m, &net)| register(&mut nl, format!("reg_f{m}"), net))
            .collect::<Result<_, _>>()?;

        let bank = |nl: &mut Netlist, tag: &str| -> Result<Vec<Vec<NetId>>, DatapathError> {
            (0..clauses)
                .map(|j| {
                    (0..literals)
                        .map(|l| {
                            let raw = nl.add_input(format!("{tag}{j}_{l}"));
                            register(nl, format!("reg_{tag}{j}_{l}"), raw)
                        })
                        .collect()
                })
                .collect()
        };
        let positive_excludes = bank(&mut nl, "ep")?;
        let negative_excludes = bank(&mut nl, "en")?;

        // Clause banks.
        let positive_clauses: Vec<NetId> = positive_excludes
            .iter()
            .enumerate()
            .map(|(j, bundle)| single_rail_clause(&mut nl, &format!("cp{j}"), &features, bundle))
            .collect::<Result<_, _>>()?;
        let negative_clauses: Vec<NetId> = negative_excludes
            .iter()
            .enumerate()
            .map(|(j, bundle)| single_rail_clause(&mut nl, &format!("cn{j}"), &features, bundle))
            .collect::<Result<_, _>>()?;

        // Population counts and comparison.
        let positive_count = single_rail_popcount8(&mut nl, "pcp", &positive_clauses)?;
        let negative_count = single_rail_popcount8(&mut nl, "pcn", &negative_clauses)?;
        let comparator = single_rail_comparator(&mut nl, "cmp", &positive_count, &negative_count)?;

        // Registered outputs.
        let less = register(&mut nl, "reg_less".to_string(), comparator.less)?;
        let equal = register(&mut nl, "reg_equal".to_string(), comparator.equal)?;
        let greater = register(&mut nl, "reg_greater".to_string(), comparator.greater)?;
        nl.add_output("less", less);
        nl.add_output("equal", equal);
        nl.add_output("greater", greater);

        Ok(Self {
            netlist: nl,
            config: *config,
        })
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The configuration this datapath was generated from.
    #[must_use]
    pub fn config(&self) -> &DatapathConfig {
        &self.config
    }

    /// Flattens a feature vector and exclude masks into the data-input
    /// vector expected by [`gatesim::run_synchronous_vectors`] (every
    /// primary input except `clk`, in declaration order).
    ///
    /// # Errors
    ///
    /// Returns width-mismatch errors if the inputs do not match this
    /// datapath's configuration.
    pub fn operand_bits(
        &self,
        features: &[bool],
        masks: &ExcludeMasks,
    ) -> Result<Vec<bool>, DatapathError> {
        if features.len() != self.config.features() {
            return Err(DatapathError::WidthMismatch {
                what: "feature vector",
                expected: self.config.features(),
                got: features.len(),
            });
        }
        if masks.feature_count() != self.config.features()
            || masks.clauses_per_polarity() != self.config.clauses_per_polarity()
        {
            return Err(DatapathError::WidthMismatch {
                what: "exclude masks",
                expected: self.config.features(),
                got: masks.feature_count(),
            });
        }
        let mut bits = Vec::with_capacity(self.config.data_input_count());
        bits.extend_from_slice(features);
        for mask in masks.positive() {
            bits.extend_from_slice(mask);
        }
        for mask in masks.negative() {
            bits.extend_from_slice(mask);
        }
        Ok(bits)
    }

    /// Decodes the registered comparator outputs (in port order `less`,
    /// `equal`, `greater`) into a decision index compatible with
    /// [`crate::ComparatorDecision::from_index`].
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::DecodeFailure`] unless exactly one output
    /// is high.
    pub fn decode_decision_bits(&self, outputs: &[bool]) -> Result<usize, DatapathError> {
        if outputs.len() != 3 {
            return Err(DatapathError::DecodeFailure(format!(
                "expected 3 comparator outputs, got {}",
                outputs.len()
            )));
        }
        let high: Vec<usize> = outputs
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| i)
            .collect();
        if high.len() == 1 {
            Ok(high[0])
        } else {
            Err(DatapathError::DecodeFailure(format!(
                "expected exactly one active comparator output, got {high:?}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use celllib::Library;
    use gatesim::run_synchronous_vectors;
    use netlist::NetlistStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sta::ClockPeriod;

    fn random_masks(rng: &mut StdRng, config: &DatapathConfig) -> ExcludeMasks {
        let bank = |rng: &mut StdRng| {
            (0..config.clauses_per_polarity())
                .map(|_| {
                    (0..config.literals_per_clause())
                        .map(|_| rng.gen_bool(0.7))
                        .collect()
                })
                .collect()
        };
        ExcludeMasks::from_raw(bank(rng), bank(rng), config.features())
    }

    #[test]
    fn single_rail_datapath_matches_reference_through_the_pipeline() {
        let config = DatapathConfig::new(4, 4).unwrap();
        let dp = SingleRailDatapath::generate(&config).unwrap();
        let lib = Library::umc_ll();
        let clock = ClockPeriod::compute(dp.netlist(), &lib).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let masks = random_masks(&mut rng, &config);
        let cases: Vec<Vec<bool>> = (0..6)
            .map(|_| (0..config.features()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();

        // Two pipeline registers: feed each operand twice and read the
        // result two cycles after it was applied.
        let mut vectors = Vec::new();
        for case in &cases {
            let bits = dp.operand_bits(case, &masks).unwrap();
            vectors.push(bits.clone());
            vectors.push(bits.clone());
            vectors.push(bits);
        }
        let run = run_synchronous_vectors(dp.netlist(), &lib, clock.period_ps(), &vectors);

        for (i, case) in cases.iter().enumerate() {
            let outputs: Vec<bool> = run.outputs_per_cycle[3 * i + 2]
                .iter()
                .map(|v| v.is_one())
                .collect();
            let decision = dp.decode_decision_bits(&outputs).unwrap();
            let golden = reference::infer(&masks, case);
            assert_eq!(
                decision,
                golden.decision.one_of_three_index(),
                "case {case:?}"
            );
        }
    }

    #[test]
    fn single_rail_datapath_has_flip_flops_and_uses_xor() {
        let config = DatapathConfig::new(4, 4).unwrap();
        let dp = SingleRailDatapath::generate(&config).unwrap();
        let stats = NetlistStats::of(dp.netlist());
        // Input registers: features + both exclude banks; output registers: 3.
        let expected_ffs = config.data_input_count() + 3;
        assert_eq!(stats.sequential_count, expected_ffs);
        assert!(stats.histogram.count(netlist::CellKind::Xor2) > 0);
        assert!(dualrail::check_unate(dp.netlist()).is_err());
    }

    #[test]
    fn wrong_widths_are_rejected() {
        let config = DatapathConfig::new(4, 4).unwrap();
        let dp = SingleRailDatapath::generate(&config).unwrap();
        let masks = ExcludeMasks::from_raw(vec![vec![true; 8]; 4], vec![vec![true; 8]; 4], 4);
        assert!(dp.operand_bits(&[true; 3], &masks).is_err());
        assert!(dp.decode_decision_bits(&[true, true, false]).is_err());
        assert!(dp.decode_decision_bits(&[false, false]).is_err());
    }
}
