//! Clause calculation: the include/exclude masking and AND-tree
//! aggregation of Section IV-A.
//!
//! For every feature `f_m` a clause receives two exclude signals from its
//! automaton team: `e_{2m}` masks the literal `f_m` and `e_{2m+1}` masks
//! the negated literal `¬f_m`.  A partial clause term is
//! `(f_m ∨ e_{2m}) ∧ (¬f_m ∨ e_{2m+1})`; the clause output is the AND of
//! all partial terms.  A clause whose literals are all excluded would
//! evaluate to constant 1, which must not count as a vote, so the
//! hardware also ANDs in a "some literal included" term derived from the
//! exclude signals (`¬(e_0 ∧ e_1 ∧ … )`), matching the software
//! convention that an empty clause outputs 0 during inference.
//!
//! The dual-rail version follows the paper's optimised mapping: the mask
//! stage uses inverting gate pairs (one inversion per path, so the block
//! has an inverting spacer overall) and the negated literal `¬f_m` is
//! obtained for free by swapping the feature's rails.

use dualrail::{DualRailNetlist, DualRailSignal, SpacerPolarity};
use netlist::{CellKind, NetId, Netlist};

use crate::DatapathError;

/// Builds one dual-rail clause.
///
/// * `features[m]` — the dual-rail feature inputs (all-zero spacer);
/// * `excludes[2m]`/`excludes[2m+1]` — the dual-rail exclude signals for
///   the literal and its negation.
///
/// Returns the clause output as an all-zero-spacer signal (a spacer
/// inverter is appended after the inverting mask stage, mirroring the
/// `spinv` instances of the paper's Figure 2 before the counter).
///
/// # Errors
///
/// Propagates construction errors; returns a width-mismatch error if
/// `excludes.len() != 2 * features.len()`.
pub fn dual_rail_clause(
    dr: &mut DualRailNetlist,
    prefix: &str,
    features: &[DualRailSignal],
    excludes: &[DualRailSignal],
) -> Result<DualRailSignal, DatapathError> {
    if excludes.len() != 2 * features.len() {
        return Err(DatapathError::WidthMismatch {
            what: "exclude signal bundle",
            expected: 2 * features.len(),
            got: excludes.len(),
        });
    }

    // Mask stage: inverting OR pairs flip the spacer polarity to all-one.
    let mut partial_terms = Vec::with_capacity(2 * features.len());
    for (m, &feature) in features.iter().enumerate() {
        let positive_literal =
            dr.or2_inverting(&format!("{prefix}_mskp{m}"), feature, excludes[2 * m])?;
        let negative_literal = dr.or2_inverting(
            &format!("{prefix}_mskn{m}"),
            feature.complement(),
            excludes[2 * m + 1],
        )?;
        partial_terms.push(positive_literal);
        partial_terms.push(negative_literal);
    }

    // "Some literal included" guard, also in the inverted-spacer domain so
    // it can join the same AND tree: NOT(AND of all excludes).
    let all_excluded = dr.and_tree(&format!("{prefix}_allex"), excludes)?;
    let guard = dr.spacer_inverter(&format!("{prefix}_guard"), all_excluded.complement())?;
    partial_terms.push(guard);

    // AND tree over the inverted-spacer partial terms.
    let clause_inverted = dr.and_tree(&format!("{prefix}_and"), &partial_terms)?;
    debug_assert_eq!(clause_inverted.polarity, SpacerPolarity::AllOne);

    // Return to the all-zero spacer for the population counter.
    let clause = dr.spacer_inverter(&format!("{prefix}_out"), clause_inverted)?;
    Ok(clause)
}

/// Builds one single-rail clause (for the synchronous baseline) and
/// returns its output net.
///
/// # Errors
///
/// Propagates construction errors; returns a width-mismatch error if
/// `excludes.len() != 2 * features.len()`.
pub fn single_rail_clause(
    nl: &mut Netlist,
    prefix: &str,
    features: &[NetId],
    excludes: &[NetId],
) -> Result<NetId, DatapathError> {
    if excludes.len() != 2 * features.len() {
        return Err(DatapathError::WidthMismatch {
            what: "exclude signal bundle",
            expected: 2 * features.len(),
            got: excludes.len(),
        });
    }
    let mut terms = Vec::with_capacity(2 * features.len() + 1);
    for (m, &feature) in features.iter().enumerate() {
        let inverted = nl.add_cell(format!("{prefix}_finv{m}"), CellKind::Inv, &[feature])?;
        let masked_pos = nl.add_cell(
            format!("{prefix}_mskp{m}"),
            CellKind::Or2,
            &[feature, excludes[2 * m]],
        )?;
        let masked_neg = nl.add_cell(
            format!("{prefix}_mskn{m}"),
            CellKind::Or2,
            &[inverted, excludes[2 * m + 1]],
        )?;
        terms.push(masked_pos);
        terms.push(masked_neg);
    }
    let all_excluded = nl.add_and_tree(&format!("{prefix}_allex"), excludes)?;
    let guard = nl.add_cell(format!("{prefix}_guard"), CellKind::Inv, &[all_excluded])?;
    terms.push(guard);
    Ok(nl.add_and_tree(&format!("{prefix}_and"), &terms)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualrail::DualRailValue;
    use netlist::Evaluator;
    use std::collections::HashMap;
    use tsetlin::ExcludeMasks;

    /// Golden clause function shared with the software model.
    fn golden(mask: &[bool], features: &[bool]) -> bool {
        let masks = ExcludeMasks::from_raw(vec![mask.to_vec()], vec![], features.len());
        masks.clause_output(mask, features)
    }

    #[test]
    fn dual_rail_clause_matches_golden_model_exhaustively() {
        let feature_count = 3;
        let mut dr = DualRailNetlist::new("clause");
        let features: Vec<DualRailSignal> = (0..feature_count)
            .map(|m| dr.add_dual_input(format!("f{m}")))
            .collect();
        let excludes: Vec<DualRailSignal> = (0..2 * feature_count)
            .map(|l| dr.add_dual_input(format!("e{l}")))
            .collect();
        let clause = dual_rail_clause(&mut dr, "c0", &features, &excludes).unwrap();
        assert_eq!(clause.polarity, SpacerPolarity::AllZero);
        dr.add_dual_output("clause", clause);
        let eval = Evaluator::new(dr.netlist()).unwrap();

        // Sweep a selection of masks and all feature patterns.
        for mask_bits in [
            0b000000usize,
            0b111111,
            0b101010,
            0b010101,
            0b100110,
            0b001111,
        ] {
            let mask: Vec<bool> = (0..2 * feature_count)
                .map(|l| mask_bits & (1 << l) != 0)
                .collect();
            for pattern in 0..(1usize << feature_count) {
                let fv: Vec<bool> = (0..feature_count)
                    .map(|m| pattern & (1 << m) != 0)
                    .collect();
                let mut inputs = HashMap::new();
                for (m, sig) in features.iter().enumerate() {
                    let (p, n) = DualRailValue::encode_valid(fv[m], sig.polarity);
                    inputs.insert(sig.positive, p);
                    inputs.insert(sig.negative, n);
                }
                for (l, sig) in excludes.iter().enumerate() {
                    let (p, n) = DualRailValue::encode_valid(mask[l], sig.polarity);
                    inputs.insert(sig.positive, p);
                    inputs.insert(sig.negative, n);
                }
                let values = eval.eval(&inputs);
                let got = DualRailValue::decode(
                    values[clause.positive.index()].into(),
                    values[clause.negative.index()].into(),
                    clause.polarity,
                );
                assert_eq!(
                    got,
                    DualRailValue::Valid(golden(&mask, &fv)),
                    "mask {mask:?} features {fv:?}"
                );
            }
        }

        // Spacer in, spacer out.
        let mut spacer = HashMap::new();
        for sig in features.iter().chain(&excludes) {
            let (p, n) = DualRailValue::encode_spacer(sig.polarity);
            spacer.insert(sig.positive, p);
            spacer.insert(sig.negative, n);
        }
        let values = eval.eval(&spacer);
        let got = DualRailValue::decode(
            values[clause.positive.index()].into(),
            values[clause.negative.index()].into(),
            clause.polarity,
        );
        assert_eq!(got, DualRailValue::Spacer);
    }

    #[test]
    fn single_rail_clause_matches_golden_model() {
        let feature_count = 3;
        let mut nl = Netlist::new("clause_sr");
        let features: Vec<NetId> = (0..feature_count)
            .map(|m| nl.add_input(format!("f{m}")))
            .collect();
        let excludes: Vec<NetId> = (0..2 * feature_count)
            .map(|l| nl.add_input(format!("e{l}")))
            .collect();
        let out = single_rail_clause(&mut nl, "c0", &features, &excludes).unwrap();
        nl.add_output("clause", out);
        let eval = Evaluator::new(&nl).unwrap();

        for mask_bits in 0..(1usize << (2 * feature_count)) {
            let mask: Vec<bool> = (0..2 * feature_count)
                .map(|l| mask_bits & (1 << l) != 0)
                .collect();
            for pattern in 0..(1usize << feature_count) {
                let fv: Vec<bool> = (0..feature_count)
                    .map(|m| pattern & (1 << m) != 0)
                    .collect();
                let mut inputs = HashMap::new();
                for (m, &net) in features.iter().enumerate() {
                    inputs.insert(net, fv[m]);
                }
                for (l, &net) in excludes.iter().enumerate() {
                    inputs.insert(net, mask[l]);
                }
                let values = eval.eval(&inputs);
                assert_eq!(
                    values[out.index()],
                    golden(&mask, &fv),
                    "mask {mask:?} features {fv:?}"
                );
            }
        }
    }

    #[test]
    fn mismatched_widths_are_rejected() {
        let mut dr = DualRailNetlist::new("bad");
        let f = dr.add_dual_input("f");
        let e = dr.add_dual_input("e");
        assert!(matches!(
            dual_rail_clause(&mut dr, "c", &[f], &[e]),
            Err(DatapathError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn clause_uses_only_unate_gates() {
        let mut dr = DualRailNetlist::new("clause");
        let features: Vec<DualRailSignal> =
            (0..4).map(|m| dr.add_dual_input(format!("f{m}"))).collect();
        let excludes: Vec<DualRailSignal> =
            (0..8).map(|l| dr.add_dual_input(format!("e{l}"))).collect();
        let _ = dual_rail_clause(&mut dr, "c0", &features, &excludes).unwrap();
        assert!(dualrail::check_unate(dr.netlist()).is_ok());
    }
}
