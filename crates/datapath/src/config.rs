//! Datapath dimensioning.

use crate::DatapathError;

/// Dimensions of a Tsetlin-machine inference datapath.
///
/// The paper's design uses an 8-input population counter (eight clauses
/// per voting polarity); this reproduction supports one to eight clauses
/// per polarity — narrower configurations pad the counter inputs with
/// constant zeros, exactly as unused clause slots would be tied off in
/// silicon.
///
/// # Example
///
/// ```
/// use datapath::DatapathConfig;
/// let config = DatapathConfig::new(16, 8)?;
/// assert_eq!(config.features(), 16);
/// assert_eq!(config.clauses_per_polarity(), 8);
/// assert_eq!(config.count_bits(), 4);
/// # Ok::<(), datapath::DatapathError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DatapathConfig {
    features: usize,
    clauses_per_polarity: usize,
}

impl DatapathConfig {
    /// Maximum clauses per polarity supported by the population counter.
    pub const MAX_CLAUSES_PER_POLARITY: usize = 8;

    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::InvalidConfig`] when `features` is zero
    /// or `clauses_per_polarity` is zero or exceeds
    /// [`Self::MAX_CLAUSES_PER_POLARITY`].
    pub fn new(features: usize, clauses_per_polarity: usize) -> Result<Self, DatapathError> {
        if features == 0 {
            return Err(DatapathError::InvalidConfig {
                name: "features",
                reason: "must be at least 1".to_string(),
            });
        }
        if clauses_per_polarity == 0 || clauses_per_polarity > Self::MAX_CLAUSES_PER_POLARITY {
            return Err(DatapathError::InvalidConfig {
                name: "clauses_per_polarity",
                reason: format!(
                    "must be between 1 and {}, got {clauses_per_polarity}",
                    Self::MAX_CLAUSES_PER_POLARITY
                ),
            });
        }
        Ok(Self {
            features,
            clauses_per_polarity,
        })
    }

    /// Number of Boolean input features.
    #[must_use]
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of clauses in each voting polarity.
    #[must_use]
    pub fn clauses_per_polarity(&self) -> usize {
        self.clauses_per_polarity
    }

    /// Number of literals per clause (`2 × features`).
    #[must_use]
    pub fn literals_per_clause(&self) -> usize {
        2 * self.features
    }

    /// Number of exclude inputs per clause bank.
    #[must_use]
    pub fn excludes_per_bank(&self) -> usize {
        self.clauses_per_polarity * self.literals_per_clause()
    }

    /// Width of each population-count output in bits.
    #[must_use]
    pub fn count_bits(&self) -> usize {
        // The 8-input counter always produces 4 bits (0..=8).
        4
    }

    /// Total number of logical (dual-rail) data inputs of the datapath:
    /// features plus both banks of exclude signals.
    #[must_use]
    pub fn data_input_count(&self) -> usize {
        self.features + 2 * self.excludes_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_derived_sizes() {
        let config = DatapathConfig::new(8, 8).unwrap();
        assert_eq!(config.features(), 8);
        assert_eq!(config.clauses_per_polarity(), 8);
        assert_eq!(config.literals_per_clause(), 16);
        assert_eq!(config.excludes_per_bank(), 128);
        assert_eq!(config.data_input_count(), 8 + 256);
        assert_eq!(config.count_bits(), 4);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(DatapathConfig::new(0, 4).is_err());
        assert!(DatapathConfig::new(4, 0).is_err());
        assert!(DatapathConfig::new(4, 9).is_err());
        assert!(DatapathConfig::new(1, 1).is_ok());
        assert!(DatapathConfig::new(4, 8).is_ok());
    }
}
