//! Sharded four-phase inference on the dual-rail datapath — the paper's
//! actual design, measured at workload scale.
//!
//! [`crate::EventDrivenInference`] measures per-operand latency on the
//! *combinational golden model*; this module is its dual-rail sibling:
//! every operand is one complete four-phase handshake cycle on the
//! early-propagative [`DualRailDatapath`] (C-element input latches,
//! reduced completion detection and all), driven by
//! [`dualrail::ParallelProtocolDriver`] with the operand stream sharded
//! across worker threads.  The figures it reports are exactly the
//! paper's Table I quantities — spacer→valid latency and `done`
//! (completion-detection) latency per operand — and the decoded
//! [`InferenceOutcome`]s are directly comparable with the software
//! golden model.
//!
//! Sharding a sequential circuit is sound here because the four-phase
//! protocol restores one quiescent state per cycle (the reset-phase
//! contract), which the driver verifies on every cycle; outcomes and
//! latency reports are bit-identical to a streamed single contract-mode
//! driver at any thread count (property-tested at threads {1, 2, 7}).
//!
//! # Example
//!
//! ```
//! use celllib::Library;
//! use datapath::{DatapathConfig, DualRailDatapath, DualRailInference, InferenceWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = DatapathConfig::new(3, 2)?;
//! let datapath = DualRailDatapath::generate(&config)?;
//! let library = Library::umc_ll();
//! let sim = DualRailInference::new(&datapath, &library, 2)?;
//!
//! let workload = InferenceWorkload::random(&config, 6, 0.6, 11)?;
//! let run = sim.run_workload(&workload)?;
//! assert_eq!(&run.outcomes, workload.expected());
//! // The paper's Table I figures, per operand.
//! assert_eq!(run.latency.count(), 6);
//! assert!(run.latency.max_ps() > 0.0);
//! let done = run.done_latency.expect("reduced completion detection present");
//! assert!(done.min_ps() >= run.latency.min_ps());
//! # Ok(())
//! # }
//! ```

use celllib::Library;
use dualrail::{OperandResult, ParallelProtocolDriver};
use exec::Executor;
use gatesim::{LatencyReport, PipelineReport};

use crate::builder::DualRailDatapath;
use crate::reference::InferenceOutcome;
use crate::workload::InferenceWorkload;
use crate::DatapathError;

/// Result of a sharded dual-rail workload run: golden-comparable
/// outcomes plus the paper's per-operand latency figures.
#[derive(Clone, Debug, PartialEq)]
pub struct DualRailRun {
    /// Decoded inference outcomes, in operand order.
    pub outcomes: Vec<InferenceOutcome>,
    /// Spacer→valid latency of every operand, in operand order, with
    /// min/median/max/histogram summaries (Table I "Avg./Max Latency").
    pub latency: LatencyReport,
    /// `done` (completion-detection) latency of every operand, or
    /// `None` if the datapath has no completion detection.
    pub done_latency: Option<LatencyReport>,
    /// The raw per-operand protocol measurements (valid→spacer reset
    /// times, cycle times, probe values), in operand order.
    pub results: Vec<OperandResult>,
}

/// Four-phase dual-rail inference with the operand stream sharded across
/// worker threads.
///
/// Construction compiles the netlist once and validates initialisation;
/// [`DualRailInference::run_workload`] takes `&self` (all mutable state
/// is per worker), so one instance can serve many workloads.  See the
/// [module documentation](self) for the contract and an example.
#[derive(Debug)]
pub struct DualRailInference<'a> {
    driver: ParallelProtocolDriver<'a>,
    datapath: &'a DualRailDatapath,
}

impl<'a> DualRailInference<'a> {
    /// Compiles the datapath's netlist for event-driven simulation
    /// (delays from `library` at its current supply voltage and corner)
    /// and prepares `threads` workers (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates driver construction failures (e.g. a circuit that
    /// fails to settle during initialisation).
    pub fn new(
        datapath: &'a DualRailDatapath,
        library: &Library,
        threads: usize,
    ) -> Result<Self, DatapathError> {
        Self::with_executor(datapath, library, Executor::new(threads))
    }

    /// Like [`DualRailInference::new`] with an explicit executor.
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::new`].
    pub fn with_executor(
        datapath: &'a DualRailDatapath,
        library: &Library,
        executor: Executor,
    ) -> Result<Self, DatapathError> {
        // Arm the static pre-flight verifier before the first driver is
        // built: from here on, every `ProtocolDriver` constructed in
        // this process rejects netlists with error-severity findings
        // (`DualRailError::StaticVerification`) before simulating a
        // single event.  Shipped datapaths verify clean; the hook
        // guards hand-edited or retrained netlists.
        tm_lint::preflight::install();
        let driver = ParallelProtocolDriver::with_executor(datapath.circuit(), library, executor)?;
        Ok(Self { driver, datapath })
    }

    /// Number of worker threads the operand stream is sharded across.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.driver.threads()
    }

    /// The datapath being exercised.
    #[must_use]
    pub fn datapath(&self) -> &'a DualRailDatapath {
        self.datapath
    }

    /// Routes every worker's instruments into `registry` under
    /// `prefix` (see [`ParallelProtocolDriver::set_metrics`]):
    /// snapshots are bit-identical at any thread count.
    pub fn set_metrics(
        &mut self,
        registry: &std::sync::Arc<tm_obs::MetricsRegistry>,
        prefix: &str,
    ) {
        self.driver.set_metrics(registry, prefix);
    }

    /// Stops routing metrics; future runs revert to the zero-overhead
    /// disabled mode.
    pub fn clear_metrics(&mut self) {
        self.driver.clear_metrics();
    }

    /// Runs every operand of `workload` through a full four-phase cycle
    /// and returns the decoded outcomes (comparable with
    /// [`InferenceWorkload::expected`]) plus the per-operand latency
    /// reports — all in operand order and bit-identical at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns width mismatches for workloads that do not match the
    /// datapath's configuration, protocol violations and decode failures
    /// from the handshake, and
    /// [`dualrail::DualRailError::SpacerStateMismatch`] (as a
    /// [`DatapathError::DualRail`]) if a cycle breaks the reset-phase
    /// sharding contract.
    pub fn run_workload(&self, workload: &InferenceWorkload) -> Result<DualRailRun, DatapathError> {
        self.run_features(workload.masks(), workload.feature_vectors())
    }

    /// Runs an explicit batch of feature vectors (owned `&[Vec<bool>]`
    /// or borrowed `&[&[bool]]`, e.g. a serving micro-batch) against
    /// `masks` — one full four-phase handshake cycle per vector, sharded
    /// under the reset-phase contract — and returns the decoded outcomes
    /// and latency reports in input order.
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::run_workload`].
    pub fn run_features<V: AsRef<[bool]>>(
        &self,
        masks: &tsetlin::ExcludeMasks,
        feature_vectors: &[V],
    ) -> Result<DualRailRun, DatapathError> {
        let operands = feature_vectors
            .iter()
            .map(|v| self.datapath.operand_bits(v.as_ref(), masks))
            .collect::<Result<Vec<_>, _>>()?;
        let run = self.driver.run_workload(&operands)?;
        let outcomes = run
            .results
            .iter()
            .map(|result| self.datapath.decode_outcome(result))
            .collect::<Result<Vec<_>, _>>()?;
        let done_latency = run.done_latency();
        Ok(DualRailRun {
            outcomes,
            latency: run.latency,
            done_latency,
            results: run.results,
        })
    }

    /// Like [`DualRailInference::run_workload`], but 64 operand lanes
    /// per word on the bit-sliced protocol driver
    /// ([`dualrail::SlicedProtocolDriver`]).  Outcomes, spacer→valid
    /// and `done` latencies are bit-identical to
    /// [`DualRailInference::run_workload`]; the raw `results` report
    /// valid→spacer and cycle times in the phase-rebased timebase
    /// ([`dualrail::ProtocolDriver::enable_phase_rebase`]), identical
    /// up to floating-point association.
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::run_workload`].
    pub fn run_workload_sliced(
        &self,
        workload: &InferenceWorkload,
    ) -> Result<DualRailRun, DatapathError> {
        self.run_features_sliced(workload.masks(), workload.feature_vectors())
    }

    /// Like [`DualRailInference::run_features`], but on the bit-sliced
    /// protocol driver; see
    /// [`DualRailInference::run_workload_sliced`].
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::run_workload`].
    pub fn run_features_sliced<V: AsRef<[bool]>>(
        &self,
        masks: &tsetlin::ExcludeMasks,
        feature_vectors: &[V],
    ) -> Result<DualRailRun, DatapathError> {
        let operands = feature_vectors
            .iter()
            .map(|v| self.datapath.operand_bits(v.as_ref(), masks))
            .collect::<Result<Vec<_>, _>>()?;
        let run = self.driver.run_workload_sliced(&operands)?;
        let outcomes = run
            .results
            .iter()
            .map(|result| self.datapath.decode_outcome(result))
            .collect::<Result<Vec<_>, _>>()?;
        let done_latency = run.done_latency();
        Ok(DualRailRun {
            outcomes,
            latency: run.latency,
            done_latency,
            results: run.results,
        })
    }

    /// Like [`DualRailInference::run_workload`], but wavefront-pipelined
    /// ([`dualrail::PipelinedProtocolDriver`]): within each train of
    /// `config.train_length` operands, operand *k+1* is injected as soon
    /// as the input stage acknowledges operand *k*'s spacer instead of
    /// after the global `done` round-trip.  Decoded outcomes and token
    /// latencies match the unpipelined run; the returned
    /// [`PipelineReport`] adds the pipelined figure of merit — the
    /// injection-to-injection cycle time, well below the two-settle
    /// serial cycle at occupancy ≥ 2.
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::run_workload`], plus the typed wavefront
    /// hazard violations of [`dualrail::PipelinedProtocolDriver`] and
    /// the timing-analysis error if the wavefront bounds could not be
    /// computed.
    pub fn run_workload_pipelined(
        &self,
        workload: &InferenceWorkload,
        config: dualrail::PipelineConfig,
    ) -> Result<(DualRailRun, PipelineReport), DatapathError> {
        self.run_features_pipelined(workload.masks(), workload.feature_vectors(), config)
    }

    /// Explicit-batch form of
    /// [`DualRailInference::run_workload_pipelined`].
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::run_workload_pipelined`].
    pub fn run_features_pipelined<V: AsRef<[bool]>>(
        &self,
        masks: &tsetlin::ExcludeMasks,
        feature_vectors: &[V],
        config: dualrail::PipelineConfig,
    ) -> Result<(DualRailRun, PipelineReport), DatapathError> {
        let operands = feature_vectors
            .iter()
            .map(|v| self.datapath.operand_bits(v.as_ref(), masks))
            .collect::<Result<Vec<_>, _>>()?;
        let (run, report) = self.driver.run_workload_pipelined(&operands, config)?;
        let outcomes = run
            .results
            .iter()
            .map(|result| self.datapath.decode_outcome(result))
            .collect::<Result<Vec<_>, _>>()?;
        let done_latency = run.done_latency();
        let run = DualRailRun {
            outcomes,
            latency: run.latency,
            done_latency,
            results: run.results,
        };
        Ok((run, report))
    }

    /// Like [`DualRailInference::run_workload_pipelined`], but 64
    /// operand lanes per word on the bit-sliced wavefront driver
    /// ([`dualrail::SlicedPipelinedProtocolDriver`]), composing the
    /// word-level and wavefront-level throughput multipliers;
    /// `config.train_length` counts words per train.  At
    /// [`dualrail::Occupancy::Max`] the global `done` pulses of a word
    /// train may merge, so `done_latency` is `None` there.
    ///
    /// # Errors
    ///
    /// See [`DualRailInference::run_workload_pipelined`].
    pub fn run_workload_pipelined_sliced(
        &self,
        workload: &InferenceWorkload,
        config: dualrail::PipelineConfig,
    ) -> Result<(DualRailRun, PipelineReport), DatapathError> {
        let operands = workload
            .feature_vectors()
            .iter()
            .map(|v| self.datapath.operand_bits(v.as_ref(), workload.masks()))
            .collect::<Result<Vec<_>, _>>()?;
        let (run, report) = self
            .driver
            .run_workload_pipelined_sliced(&operands, config)?;
        let outcomes = run
            .results
            .iter()
            .map(|result| self.datapath.decode_outcome(result))
            .collect::<Result<Vec<_>, _>>()?;
        let done_latency = run.done_latency();
        let run = DualRailRun {
            outcomes,
            latency: run.latency,
            done_latency,
            results: run.results,
        };
        Ok((run, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatapathConfig;
    use dualrail::ProtocolDriver;

    #[test]
    fn dual_rail_outcomes_match_golden_at_several_thread_counts() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let datapath = DualRailDatapath::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 9, 0.6, 5).unwrap();

        let reference = DualRailInference::new(&datapath, &library, 1)
            .unwrap()
            .run_workload(&workload)
            .unwrap();
        assert_eq!(reference.outcomes.as_slice(), workload.expected());
        assert_eq!(reference.latency.count(), workload.len());
        assert!(reference.latency.min_ps() > 0.0);
        let done = reference.done_latency.as_ref().expect("done present");
        // Completion detection can only fire at or after the last
        // observed output went valid.
        for (done_ps, s_to_v_ps) in done
            .latencies_ps()
            .iter()
            .zip(reference.latency.latencies_ps())
        {
            assert!(done_ps >= s_to_v_ps);
        }

        for threads in [2, 7] {
            let sim = DualRailInference::new(&datapath, &library, threads).unwrap();
            assert_eq!(sim.threads(), threads);
            let run = sim.run_workload(&workload).unwrap();
            assert_eq!(run, reference, "threads = {threads}");
        }
    }

    #[test]
    fn decoded_votes_come_from_the_hardware_counters() {
        // The probes must reproduce the golden vote counts bit for bit —
        // not just the final comparison.
        let config = DatapathConfig::new(3, 4).unwrap();
        let datapath = DualRailDatapath::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 6, 0.5, 23).unwrap();
        let run = DualRailInference::new(&datapath, &library, 2)
            .unwrap()
            .run_workload(&workload)
            .unwrap();
        for (outcome, expected) in run.outcomes.iter().zip(workload.expected()) {
            assert_eq!(outcome.positive_votes, expected.positive_votes);
            assert_eq!(outcome.negative_votes, expected.negative_votes);
        }
        // Padded upper count bits decode as constant valid zeros, so
        // every probe is present in every result.
        assert_eq!(run.results[0].probes.len(), 8);
    }

    #[test]
    fn sharded_run_matches_streamed_contract_driver() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let datapath = DualRailDatapath::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 7, 0.7, 2).unwrap();
        let operands = workload.dual_rail_operands(&datapath).unwrap();

        let mut streamed = ProtocolDriver::new(datapath.circuit(), &library).unwrap();
        let snapshot = streamed.quiescent_snapshot();
        streamed.enable_reset_contract(snapshot);
        let expected: Vec<_> = operands
            .iter()
            .map(|operand| streamed.apply_operand(operand).unwrap())
            .collect();

        let run = DualRailInference::new(&datapath, &library, 3)
            .unwrap()
            .run_workload(&workload)
            .unwrap();
        assert_eq!(run.results, expected);
    }

    /// The sliced protocol driver reproduces the plain sharded run on
    /// everything the paper reports — outcomes, spacer→valid and `done`
    /// latencies bit for bit — while the raw valid→spacer and cycle
    /// figures agree up to floating-point association (the sliced
    /// timebase is phase-rebased).  Also pins thread-invariance.
    #[test]
    fn sliced_runs_match_plain_runs_on_all_reported_figures() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let datapath = DualRailDatapath::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 9, 0.6, 5).unwrap();

        let plain = DualRailInference::new(&datapath, &library, 1)
            .unwrap()
            .run_workload(&workload)
            .unwrap();
        let reference = DualRailInference::new(&datapath, &library, 1)
            .unwrap()
            .run_workload_sliced(&workload)
            .unwrap();
        assert_eq!(reference.outcomes, plain.outcomes);
        assert_eq!(reference.latency, plain.latency);
        assert_eq!(reference.done_latency, plain.done_latency);
        for (s, p) in reference.results.iter().zip(&plain.results) {
            assert_eq!(s.outputs, p.outputs);
            assert_eq!(s.probes, p.probes);
            assert_eq!(s.s_to_v_latency_ps, p.s_to_v_latency_ps);
            assert_eq!(s.done_latency_ps, p.done_latency_ps);
            assert!((s.v_to_s_latency_ps - p.v_to_s_latency_ps).abs() < 1e-6);
            assert!((s.cycle_time_ps - p.cycle_time_ps).abs() < 1e-6);
        }

        for threads in [2, 7] {
            let run = DualRailInference::new(&datapath, &library, threads)
                .unwrap()
                .run_workload_sliced(&workload)
                .unwrap();
            assert_eq!(run, reference, "threads = {threads}");
        }
    }

    #[test]
    fn mismatched_workloads_are_rejected() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let other = DatapathConfig::new(4, 2).unwrap();
        let datapath = DualRailDatapath::generate(&config).unwrap();
        let library = Library::umc_ll();
        let sim = DualRailInference::new(&datapath, &library, 2).unwrap();
        let workload = InferenceWorkload::random(&other, 4, 0.5, 1).unwrap();
        assert!(sim.run_workload(&workload).is_err());
    }
}
