//! Workload generation: realistic operand streams for the datapath.
//!
//! The average latency of the early-propagative datapath depends on the
//! *distribution* of its operands (how often the comparator can decide
//! from the top bits, how many clauses fire, …), so the benchmarks drive
//! it with operands derived from trained Tsetlin machines as well as
//! uniform-random controls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsetlin::{ExcludeMasks, TsetlinMachine};

use crate::reference::{infer, InferenceOutcome};
use crate::{DatapathConfig, DatapathError};

/// A batch of inference operands with their golden outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InferenceWorkload {
    masks: ExcludeMasks,
    feature_vectors: Vec<Vec<bool>>,
    expected: Vec<InferenceOutcome>,
}

/// One workload operand, borrowed: the feature vector and its golden
/// outcome, plus the operand's index within the workload.  Produced by
/// [`InferenceWorkload::sample`] / [`InferenceWorkload::samples`]; the
/// borrow means request streams replaying a workload carry references,
/// not per-request feature-vector copies.
#[derive(Clone, Copy, Debug)]
pub struct SampleRef<'w> {
    /// The operand's index within the workload.
    pub index: usize,
    /// The operand's feature vector, borrowed from the workload.
    pub features: &'w [bool],
    /// The operand's golden outcome, borrowed from the workload.
    pub expected: &'w InferenceOutcome,
}

impl InferenceWorkload {
    /// Builds a workload from explicit masks and feature vectors.
    ///
    /// # Errors
    ///
    /// Returns a width-mismatch error if the masks or any feature vector
    /// disagree with `config`.
    pub fn new(
        config: &DatapathConfig,
        masks: ExcludeMasks,
        feature_vectors: Vec<Vec<bool>>,
    ) -> Result<Self, DatapathError> {
        if masks.feature_count() != config.features()
            || masks.clauses_per_polarity() != config.clauses_per_polarity()
        {
            return Err(DatapathError::WidthMismatch {
                what: "exclude masks",
                expected: config.features(),
                got: masks.feature_count(),
            });
        }
        for vector in &feature_vectors {
            if vector.len() != config.features() {
                return Err(DatapathError::WidthMismatch {
                    what: "feature vector",
                    expected: config.features(),
                    got: vector.len(),
                });
            }
        }
        let expected = feature_vectors.iter().map(|v| infer(&masks, v)).collect();
        Ok(Self {
            masks,
            feature_vectors,
            expected,
        })
    }

    /// Builds a workload from a trained Tsetlin machine and a set of
    /// feature vectors (e.g. a held-out test set).
    ///
    /// # Errors
    ///
    /// Returns a width-mismatch error if the machine does not match the
    /// datapath configuration.
    pub fn from_machine(
        config: &DatapathConfig,
        machine: &TsetlinMachine,
        feature_vectors: &[Vec<bool>],
    ) -> Result<Self, DatapathError> {
        Self::new(
            config,
            ExcludeMasks::from_machine(machine),
            feature_vectors.to_vec(),
        )
    }

    /// Builds a uniform-random workload (random masks with the given
    /// exclude probability and random features) — the control case for
    /// the operand-distribution analysis.
    ///
    /// # Errors
    ///
    /// Never fails for a valid configuration; the `Result` mirrors the
    /// other constructors.
    pub fn random(
        config: &DatapathConfig,
        operands: usize,
        exclude_probability: f64,
        seed: u64,
    ) -> Result<Self, DatapathError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = |rng: &mut StdRng| -> Vec<Vec<bool>> {
            (0..config.clauses_per_polarity())
                .map(|_| {
                    (0..config.literals_per_clause())
                        .map(|_| rng.gen_bool(exclude_probability))
                        .collect()
                })
                .collect()
        };
        let masks = ExcludeMasks::from_raw(bank(&mut rng), bank(&mut rng), config.features());
        let feature_vectors = (0..operands)
            .map(|_| (0..config.features()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        Self::new(config, masks, feature_vectors)
    }

    /// The exclude masks shared by every operand.
    #[must_use]
    pub fn masks(&self) -> &ExcludeMasks {
        &self.masks
    }

    /// The feature vectors, one per operand.
    #[must_use]
    pub fn feature_vectors(&self) -> &[Vec<bool>] {
        &self.feature_vectors
    }

    /// The golden outcome of each operand.
    #[must_use]
    pub fn expected(&self) -> &[InferenceOutcome] {
        &self.expected
    }

    /// One operand by index, borrowed: its feature vector and golden
    /// outcome.  No feature data is cloned.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn sample(&self, index: usize) -> SampleRef<'_> {
        SampleRef {
            index,
            features: &self.feature_vectors[index],
            expected: &self.expected[index],
        }
    }

    /// A borrowing iterator over the workload's operands, in operand
    /// order: each item is a [`SampleRef`] pointing into the workload,
    /// so replaying a workload (e.g. as a serving request stream) never
    /// clones a feature vector.  The iterator is `Clone`, so an endless
    /// replay is simply `workload.samples().cycle()`.
    ///
    /// # Example
    ///
    /// ```
    /// use datapath::{DatapathConfig, InferenceWorkload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let config = DatapathConfig::new(4, 2)?;
    /// let workload = InferenceWorkload::random(&config, 3, 0.6, 7)?;
    /// // Borrow 10 requests from a 3-operand workload without cloning.
    /// let replay: Vec<_> = workload.samples().cycle().take(10).collect();
    /// assert_eq!(replay.len(), 10);
    /// assert!(std::ptr::eq(replay[0].features, replay[3].features));
    /// assert_eq!(replay[4].expected, &workload.expected()[1]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn samples(&self) -> impl Iterator<Item = SampleRef<'_>> + Clone + '_ {
        (0..self.len()).map(|index| self.sample(index))
    }

    /// Number of operands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.feature_vectors.len()
    }

    /// Whether the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.feature_vectors.is_empty()
    }

    /// Flattened operand bit vectors for the dual-rail datapath.
    ///
    /// # Errors
    ///
    /// Propagates width mismatches from
    /// [`crate::DualRailDatapath::operand_bits`].
    pub fn dual_rail_operands(
        &self,
        datapath: &crate::DualRailDatapath,
    ) -> Result<Vec<Vec<bool>>, DatapathError> {
        self.feature_vectors
            .iter()
            .map(|v| datapath.operand_bits(v, &self.masks))
            .collect()
    }

    /// Flattened operand bit vectors for the single-rail datapath.
    ///
    /// # Errors
    ///
    /// Propagates width mismatches from
    /// [`crate::SingleRailDatapath::operand_bits`].
    pub fn single_rail_operands(
        &self,
        datapath: &crate::SingleRailDatapath,
    ) -> Result<Vec<Vec<bool>>, DatapathError> {
        self.feature_vectors
            .iter()
            .map(|v| datapath.operand_bits(v, &self.masks))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workload_is_reproducible_and_well_formed() {
        let config = DatapathConfig::new(6, 8).unwrap();
        let a = InferenceWorkload::random(&config, 20, 0.7, 13).unwrap();
        let b = InferenceWorkload::random(&config, 20, 0.7, 13).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(!a.is_empty());
        assert_eq!(a.expected().len(), 20);
        assert_eq!(a.masks().clauses_per_polarity(), 8);
        for vector in a.feature_vectors() {
            assert_eq!(vector.len(), 6);
        }
    }

    #[test]
    fn samples_borrow_without_cloning() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let workload = InferenceWorkload::random(&config, 6, 0.7, 3).unwrap();
        let collected: Vec<_> = workload.samples().collect();
        assert_eq!(collected.len(), 6);
        for (i, sample) in collected.iter().enumerate() {
            assert_eq!(sample.index, i);
            // The references point *into* the workload storage.
            assert!(std::ptr::eq(
                sample.features,
                workload.feature_vectors()[i].as_slice()
            ));
            assert!(std::ptr::eq(sample.expected, &workload.expected()[i]));
        }
        // Cyclic replay reuses the same storage.
        let replayed: Vec<_> = workload.samples().cycle().take(14).collect();
        assert!(std::ptr::eq(replayed[13].features, collected[1].features));
        assert_eq!(workload.sample(2).index, 2);
    }

    #[test]
    fn workload_rejects_mismatched_masks() {
        let config = DatapathConfig::new(6, 8).unwrap();
        let masks = ExcludeMasks::from_raw(vec![vec![true; 4]; 8], vec![vec![true; 4]; 8], 2);
        assert!(InferenceWorkload::new(&config, masks, vec![]).is_err());
    }

    #[test]
    fn workload_from_trained_machine() {
        let data = tsetlin::datasets::noisy_xor(120, 0.05, 3);
        let params = tsetlin::TrainingParams::new(8, 10.0, 3.5).unwrap();
        let mut tm = tsetlin::TsetlinMachine::new(data.feature_count(), params, 9).unwrap();
        tm.fit(data.train_inputs(), data.train_labels(), 10);
        let config = DatapathConfig::new(data.feature_count(), 8).unwrap();
        let workload = InferenceWorkload::from_machine(&config, &tm, data.test_inputs()).unwrap();
        assert_eq!(workload.len(), data.test_inputs().len());
        // The golden outcomes must agree with the machine's own votes.
        for (vector, outcome) in workload.feature_vectors().iter().zip(workload.expected()) {
            assert_eq!(outcome.positive_votes, tm.positive_votes(vector));
            assert_eq!(outcome.negative_votes, tm.negative_votes(vector));
        }
    }
}
