//! The software golden model of the inference datapath.
//!
//! Every hardware result (single-rail or dual-rail) is checked against
//! [`infer`], which evaluates the clauses, counts the votes and compares
//! the counts exactly as the paper's Figure 1/2 describe.

use tsetlin::ExcludeMasks;

/// The outcome of the magnitude comparison between the two vote counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComparatorDecision {
    /// Fewer positive than negative votes.
    Less,
    /// Equal vote counts.
    Equal,
    /// More positive than negative votes.
    Greater,
}

impl ComparatorDecision {
    /// Index of this decision in the hardware's 1-of-3 output group
    /// (`0 = less`, `1 = equal`, `2 = greater`).
    #[must_use]
    pub fn one_of_three_index(self) -> usize {
        match self {
            ComparatorDecision::Less => 0,
            ComparatorDecision::Equal => 1,
            ComparatorDecision::Greater => 2,
        }
    }

    /// Builds a decision from its 1-of-3 index.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Self> {
        match index {
            0 => Some(ComparatorDecision::Less),
            1 => Some(ComparatorDecision::Equal),
            2 => Some(ComparatorDecision::Greater),
            _ => None,
        }
    }
}

/// The complete result of one inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InferenceOutcome {
    /// Votes from the positive clause bank.
    pub positive_votes: usize,
    /// Votes from the negative clause bank.
    pub negative_votes: usize,
    /// The magnitude-comparator decision.
    pub decision: ComparatorDecision,
    /// The classification: the paper treats a non-negative vote sum
    /// (greater *or equal*) as "belongs to the class".
    pub in_class: bool,
}

/// Computes the golden inference outcome for a trained machine (given by
/// its exclude masks) and a feature vector.
///
/// # Panics
///
/// Panics if `features.len()` differs from the mask feature count.
#[must_use]
pub fn infer(masks: &ExcludeMasks, features: &[bool]) -> InferenceOutcome {
    assert_eq!(
        features.len(),
        masks.feature_count(),
        "feature vector width must match the masks"
    );
    let (positive_votes, negative_votes) = masks.votes(features);
    let decision = match positive_votes.cmp(&negative_votes) {
        std::cmp::Ordering::Less => ComparatorDecision::Less,
        std::cmp::Ordering::Equal => ComparatorDecision::Equal,
        std::cmp::Ordering::Greater => ComparatorDecision::Greater,
    };
    InferenceOutcome {
        positive_votes,
        negative_votes,
        decision,
        in_class: decision != ComparatorDecision::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masks_with(
        pos_includes: &[Vec<usize>],
        neg_includes: &[Vec<usize>],
        features: usize,
    ) -> ExcludeMasks {
        let to_mask = |includes: &Vec<usize>| {
            let mut mask = vec![true; 2 * features];
            for &literal in includes {
                mask[literal] = false;
            }
            mask
        };
        ExcludeMasks::from_raw(
            pos_includes.iter().map(to_mask).collect(),
            neg_includes.iter().map(to_mask).collect(),
            features,
        )
    }

    #[test]
    fn votes_and_decision() {
        // Positive clauses: [x0], [x0 & !x1]; negative clause: [x1].
        let masks = masks_with(&[vec![0], vec![0, 3]], &[vec![2]], 2);
        let outcome = infer(&masks, &[true, false]);
        assert_eq!(outcome.positive_votes, 2);
        assert_eq!(outcome.negative_votes, 0);
        assert_eq!(outcome.decision, ComparatorDecision::Greater);
        assert!(outcome.in_class);

        let outcome = infer(&masks, &[false, true]);
        assert_eq!(outcome.positive_votes, 0);
        assert_eq!(outcome.negative_votes, 1);
        assert_eq!(outcome.decision, ComparatorDecision::Less);
        assert!(!outcome.in_class);

        let outcome = infer(&masks, &[false, false]);
        assert_eq!(outcome.decision, ComparatorDecision::Equal);
        assert!(outcome.in_class, "ties count as in-class");
    }

    #[test]
    fn decision_index_round_trip() {
        for decision in [
            ComparatorDecision::Less,
            ComparatorDecision::Equal,
            ComparatorDecision::Greater,
        ] {
            assert_eq!(
                ComparatorDecision::from_index(decision.one_of_three_index()),
                Some(decision)
            );
        }
        assert_eq!(ComparatorDecision::from_index(3), None);
    }
}
