//! Bit-parallel batched inference: 64 samples per pass through a
//! combinational golden-model netlist.
//!
//! The scalar golden model evaluates one feature vector at a time —
//! either in software ([`crate::reference::infer`]) or gate-accurately
//! through [`netlist::Evaluator`].  For bulk scoring both waste the
//! machine word.  This module generates an *unregistered* single-rail
//! inference netlist (the synchronous baseline minus its flip-flops and
//! clock) and drives it with [`netlist::BatchEvaluator`], evaluating 64
//! independent samples per pass with word-wide boolean instructions.
//!
//! The exclude masks are shared by every sample of a workload (they are
//! the trained model), so their lane words are simple broadcasts —
//! all-zeros or all-ones — while the feature words carry one sample per
//! bit lane.
//!
//! # Example
//!
//! ```
//! use datapath::{BatchGoldenModel, BatchInference, DatapathConfig, InferenceWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = DatapathConfig::new(6, 4)?;
//! let model = BatchGoldenModel::generate(&config)?;
//! let mut batch = BatchInference::new(&model)?;
//!
//! let workload = InferenceWorkload::random(&config, 100, 0.7, 42)?;
//! let outcomes = batch.run_workload(&workload)?;
//! assert_eq!(&outcomes, workload.expected());
//! # Ok(())
//! # }
//! ```

use netlist::{BatchEvaluator, BatchState, Netlist, LANES};
use tsetlin::ExcludeMasks;

use crate::clause_logic::single_rail_clause;
use crate::comparator::single_rail_comparator;
use crate::popcount::single_rail_popcount8;
use crate::reference::{ComparatorDecision, InferenceOutcome};
use crate::workload::InferenceWorkload;
use crate::{DatapathConfig, DatapathError};

/// The combinational golden-model netlist: clause banks, population
/// counters and comparator with no registers and no clock.
///
/// Primary inputs follow the same order as
/// [`crate::SingleRailDatapath::operand_bits`] minus `clk`: the features
/// `f*`, the positive-bank excludes `ep*`, the negative-bank excludes
/// `en*`.  Primary outputs are `less`, `equal`, `greater` followed by the
/// two 4-bit vote counts `pcp*` and `pcn*` (LSB first), so batched runs
/// can reconstruct full [`InferenceOutcome`]s.
#[derive(Clone, Debug)]
pub struct BatchGoldenModel {
    netlist: Netlist,
    config: DatapathConfig,
}

impl BatchGoldenModel {
    /// Generates the combinational inference netlist for `config`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn generate(config: &DatapathConfig) -> Result<Self, DatapathError> {
        let mut nl = Netlist::new("tm_inference_batch_golden");
        let clauses = config.clauses_per_polarity();
        let literals = config.literals_per_clause();

        let features: Vec<_> = (0..config.features())
            .map(|m| nl.add_input(format!("f{m}")))
            .collect();
        let bank = |nl: &mut Netlist, tag: &str| -> Vec<Vec<netlist::NetId>> {
            (0..clauses)
                .map(|j| {
                    (0..literals)
                        .map(|l| nl.add_input(format!("{tag}{j}_{l}")))
                        .collect()
                })
                .collect()
        };
        let positive_excludes = bank(&mut nl, "ep");
        let negative_excludes = bank(&mut nl, "en");

        let positive_clauses: Vec<_> = positive_excludes
            .iter()
            .enumerate()
            .map(|(j, bundle)| single_rail_clause(&mut nl, &format!("cp{j}"), &features, bundle))
            .collect::<Result<_, _>>()?;
        let negative_clauses: Vec<_> = negative_excludes
            .iter()
            .enumerate()
            .map(|(j, bundle)| single_rail_clause(&mut nl, &format!("cn{j}"), &features, bundle))
            .collect::<Result<_, _>>()?;

        let positive_count = single_rail_popcount8(&mut nl, "pcp", &positive_clauses)?;
        let negative_count = single_rail_popcount8(&mut nl, "pcn", &negative_clauses)?;
        let comparator = single_rail_comparator(&mut nl, "cmp", &positive_count, &negative_count)?;

        nl.add_output("less", comparator.less);
        nl.add_output("equal", comparator.equal);
        nl.add_output("greater", comparator.greater);
        for (i, &bit) in positive_count.iter().enumerate() {
            nl.add_output(format!("pcp{i}"), bit);
        }
        for (i, &bit) in negative_count.iter().enumerate() {
            nl.add_output(format!("pcn{i}"), bit);
        }

        debug_assert!(nl.validate().is_ok());
        Ok(Self {
            netlist: nl,
            config: *config,
        })
    }

    /// The underlying combinational netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The configuration this model was generated from.
    #[must_use]
    pub fn config(&self) -> &DatapathConfig {
        &self.config
    }
}

/// Batched 64-samples-per-pass inference over a [`BatchGoldenModel`].
///
/// Owns all scratch buffers, so steady-state batches perform no heap
/// allocation beyond the returned outcome vector.
///
/// # Example
///
/// ```
/// use datapath::{BatchGoldenModel, BatchInference, DatapathConfig, InferenceWorkload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DatapathConfig::new(5, 4)?;
/// let model = BatchGoldenModel::generate(&config)?;
/// let mut batch = BatchInference::new(&model)?;
///
/// // 70 operands: one full 64-lane pass plus a 6-lane remainder.
/// let workload = InferenceWorkload::random(&config, 70, 0.7, 1)?;
/// let outcomes = batch.run_workload(&workload)?;
/// assert_eq!(outcomes.len(), 70);
/// assert_eq!(&outcomes, workload.expected());
/// assert_eq!(batch.lanes(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchInference<'a> {
    evaluator: BatchEvaluator<'a>,
    config: DatapathConfig,
    state: BatchState,
    values: Vec<u64>,
    pi_words: Vec<u64>,
}

impl<'a> BatchInference<'a> {
    /// Prepares the batched evaluator (flattens the netlist once).
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (a generated model is always acyclic).
    pub fn new(model: &'a BatchGoldenModel) -> Result<Self, DatapathError> {
        let evaluator = BatchEvaluator::new(model.netlist())?;
        let state = evaluator.new_state();
        let pi_words = vec![0; evaluator.input_count()];
        Ok(Self {
            evaluator,
            config: model.config,
            state,
            values: Vec::new(),
            pi_words,
        })
    }

    /// Verifies that `masks` match this model's configuration.
    fn check_masks(&self, masks: &ExcludeMasks) -> Result<(), DatapathError> {
        check_masks(&self.config, masks)
    }

    /// Runs up to [`LANES`] samples in one pass and returns their
    /// outcomes in sample order.
    ///
    /// Generic over the feature-vector representation: owned vectors
    /// (`&[Vec<bool>]`) and borrowed slices (`&[&[bool]]`, e.g. a
    /// serving micro-batch of [`crate::SampleRef`] features) both work,
    /// so callers never have to clone features just to batch them.
    ///
    /// # Errors
    ///
    /// Returns width mismatches for masks or feature vectors that do not
    /// match the configuration, or if more than [`LANES`] samples are
    /// supplied.
    pub fn infer_batch<V: AsRef<[bool]>>(
        &mut self,
        masks: &ExcludeMasks,
        feature_vectors: &[V],
    ) -> Result<Vec<InferenceOutcome>, DatapathError> {
        self.check_masks(masks)?;
        // Exclude words: broadcast (the model is shared by all lanes).
        broadcast_mask_words(masks, self.config.features(), &mut self.pi_words);
        pack_feature_words(feature_vectors, self.config.features(), &mut self.pi_words)?;
        let outputs = self
            .evaluator
            .eval_words(&self.pi_words, &mut self.state, &mut self.values);
        decode_lane_outcomes(&outputs, feature_vectors.len())
    }

    /// Runs a whole workload through the batched model, 64 samples per
    /// pass, and returns one outcome per operand.
    ///
    /// # Errors
    ///
    /// Propagates the mismatch and decode errors of
    /// [`BatchInference::infer_batch`].
    pub fn run_workload(
        &mut self,
        workload: &InferenceWorkload,
    ) -> Result<Vec<InferenceOutcome>, DatapathError> {
        let mut outcomes = Vec::with_capacity(workload.len());
        for chunk in workload.feature_vectors().chunks(LANES) {
            outcomes.extend(self.infer_batch(workload.masks(), chunk)?);
        }
        Ok(outcomes)
    }

    /// Number of samples evaluated per pass.
    #[must_use]
    pub fn lanes(&self) -> usize {
        LANES
    }
}

/// Verifies that `masks` match `config`.
pub(crate) fn check_masks(
    config: &DatapathConfig,
    masks: &ExcludeMasks,
) -> Result<(), DatapathError> {
    if masks.feature_count() != config.features() {
        return Err(DatapathError::WidthMismatch {
            what: "exclude masks",
            expected: config.features(),
            got: masks.feature_count(),
        });
    }
    if masks.clauses_per_polarity() != config.clauses_per_polarity() {
        return Err(DatapathError::WidthMismatch {
            what: "exclude mask clause count",
            expected: config.clauses_per_polarity(),
            got: masks.clauses_per_polarity(),
        });
    }
    Ok(())
}

/// Writes the exclude-mask broadcast words (all-zeros or all-ones — the
/// trained model is shared by every lane) into `pi_words[features..]`.
pub(crate) fn broadcast_mask_words(masks: &ExcludeMasks, features: usize, pi_words: &mut [u64]) {
    let mut slot = features;
    for bank in [masks.positive(), masks.negative()] {
        for mask in bank {
            for &bit in mask {
                pi_words[slot] = if bit { u64::MAX } else { 0 };
                slot += 1;
            }
        }
    }
    debug_assert_eq!(slot, pi_words.len());
}

/// Packs up to [`LANES`] feature vectors into `pi_words[..features]`,
/// one sample per bit lane (surplus lanes are zeroed).  Generic over
/// the vector representation (owned or borrowed).
///
/// # Errors
///
/// Returns width mismatches for oversized batches or wrong-width vectors.
pub(crate) fn pack_feature_words<V: AsRef<[bool]>>(
    feature_vectors: &[V],
    features: usize,
    pi_words: &mut [u64],
) -> Result<(), DatapathError> {
    if feature_vectors.len() > LANES {
        return Err(DatapathError::WidthMismatch {
            what: "batch sample count",
            expected: LANES,
            got: feature_vectors.len(),
        });
    }
    pi_words[..features].iter_mut().for_each(|w| *w = 0);
    for (lane, vector) in feature_vectors.iter().enumerate() {
        let vector = vector.as_ref();
        if vector.len() != features {
            return Err(DatapathError::WidthMismatch {
                what: "feature vector",
                expected: features,
                got: vector.len(),
            });
        }
        for (word, &bit) in pi_words.iter_mut().zip(vector) {
            *word |= u64::from(bit) << lane;
        }
    }
    Ok(())
}

/// Decodes the first `lanes` lanes of a batch pass's primary-output words
/// (`less`/`equal`/`greater` then the two 4-bit vote counts) into
/// [`InferenceOutcome`]s.
///
/// # Errors
///
/// Returns a decode failure if a lane's comparator outputs are not
/// one-hot.
pub(crate) fn decode_lane_outcomes(
    outputs: &[u64],
    lanes: usize,
) -> Result<Vec<InferenceOutcome>, DatapathError> {
    let &[less, equal, greater, ..] = outputs else {
        return Err(DatapathError::DecodeFailure(format!(
            "batch pass produced {} output words; the golden model declares \
             three comparator outputs followed by two 4-bit vote counts",
            outputs.len()
        )));
    };
    if outputs.len() < 11 {
        return Err(DatapathError::DecodeFailure(format!(
            "batch pass produced {} output words, expected 11 (3 comparator + 2×4 votes)",
            outputs.len()
        )));
    }
    (0..lanes)
        .map(|lane| {
            let decode_count = |words: &[u64]| -> usize {
                words
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (((w >> lane) & 1) as usize) << i)
                    .sum()
            };
            let positive_votes = decode_count(&outputs[3..7]);
            let negative_votes = decode_count(&outputs[7..11]);
            let active: Vec<usize> = [less, equal, greater]
                .iter()
                .enumerate()
                .filter(|(_, &w)| (w >> lane) & 1 == 1)
                .map(|(i, _)| i)
                .collect();
            let &[index] = active.as_slice() else {
                return Err(DatapathError::DecodeFailure(format!(
                    "lane {lane}: expected exactly one active comparator output, got {active:?}"
                )));
            };
            let decision = ComparatorDecision::from_index(index).ok_or_else(|| {
                DatapathError::DecodeFailure(format!(
                    "lane {lane}: comparator index {index} has no decision"
                ))
            })?;
            Ok(InferenceOutcome {
                positive_votes,
                negative_votes,
                decision,
                in_class: decision != ComparatorDecision::Less,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use netlist::CellKind;

    #[test]
    fn golden_model_netlist_is_combinational() {
        let config = DatapathConfig::new(4, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        assert!(model
            .netlist()
            .cells()
            .all(|(_, c)| c.kind() != CellKind::Dff));
        assert!(model.netlist().find_net("clk").is_none());
        model.netlist().validate().unwrap();
    }

    #[test]
    fn batch_matches_software_reference_on_random_workload() {
        let config = DatapathConfig::new(6, 8).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let mut batch = BatchInference::new(&model).unwrap();
        // 150 operands spans two full passes plus a 22-lane remainder.
        let workload = InferenceWorkload::random(&config, 150, 0.7, 11).unwrap();
        let outcomes = batch.run_workload(&workload).unwrap();
        assert_eq!(outcomes.len(), workload.len());
        assert_eq!(&outcomes, workload.expected());
    }

    #[test]
    fn batch_votes_match_reference_votes() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let mut batch = BatchInference::new(&model).unwrap();
        let workload = InferenceWorkload::random(&config, 40, 0.6, 3).unwrap();
        let outcomes = batch
            .infer_batch(workload.masks(), workload.feature_vectors())
            .unwrap();
        for (vector, outcome) in workload.feature_vectors().iter().zip(&outcomes) {
            let golden = reference::infer(workload.masks(), vector);
            assert_eq!(outcome, &golden);
        }
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let mut batch = BatchInference::new(&model).unwrap();
        let workload = InferenceWorkload::random(&config, 65, 0.5, 1).unwrap();
        let result = batch.infer_batch(workload.masks(), workload.feature_vectors());
        assert!(matches!(
            result,
            Err(DatapathError::WidthMismatch {
                what: "batch sample count",
                ..
            })
        ));
        // The chunking wrapper handles the same workload fine.
        assert!(batch.run_workload(&workload).is_ok());
    }

    #[test]
    fn mismatched_masks_are_rejected() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let other = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let mut batch = BatchInference::new(&model).unwrap();
        let workload = InferenceWorkload::random(&other, 4, 0.5, 1).unwrap();
        assert!(batch
            .infer_batch(workload.masks(), workload.feature_vectors())
            .is_err());
    }
}
