//! Magnitude comparison of the two vote counts (Section IV-C).
//!
//! The asynchronous comparator works on the dual-rail count bits from the
//! most significant bit downwards.  For each bit position three mutually
//! exclusive, monotone signals are derived directly from the rails
//! (`greater-at-this-bit`, `less-at-this-bit`, `equal-at-this-bit`); the
//! overall decision is the classic priority expression
//!
//! ```text
//! greater = gt3 ∨ (eq3 ∧ (gt2 ∨ (eq2 ∧ (gt1 ∨ (eq1 ∧ gt0)))))
//! ```
//!
//! Because every signal idles at 0 and rises monotonically, the OR chain
//! resolves as soon as the most significant differing bit-pair becomes
//! valid — the comparator does not wait for the lower bits, which is
//! exactly the early-propagation mechanism behind the paper's
//! average-latency advantage (and saves the switching energy of the
//! lower bits when operands differ by a large margin).
//!
//! The three outputs use a **1-of-3 code** rather than three dual-rail
//! pairs: the all-low state is the spacer and exactly one wire rises per
//! valid comparison, so completion detection needs only an OR of the
//! three wires.
//!
//! A conventional single-rail comparator is provided for the baseline.

use dualrail::{DualRailNetlist, DualRailSignal};
use netlist::{CellKind, NetId, Netlist};

use crate::DatapathError;

/// The three 1-of-3 output wires of the asynchronous comparator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OneOfThreeComparator {
    /// High when the first operand is smaller.
    pub less: NetId,
    /// High when the operands are equal.
    pub equal: NetId,
    /// High when the first operand is larger.
    pub greater: NetId,
}

impl OneOfThreeComparator {
    /// The wires in the index order used by the datapath's 1-of-3 output
    /// group (`0 = less`, `1 = equal`, `2 = greater`).
    #[must_use]
    pub fn wires(&self) -> Vec<NetId> {
        vec![self.less, self.equal, self.greater]
    }
}

/// Builds the dual-rail, early-terminating magnitude comparator.
///
/// `a` and `b` are equal-width dual-rail operands, least significant bit
/// first.
///
/// # Errors
///
/// Returns a width-mismatch error if the operands differ in width or are
/// empty; propagates construction errors.
pub fn dual_rail_comparator(
    dr: &mut DualRailNetlist,
    prefix: &str,
    a: &[DualRailSignal],
    b: &[DualRailSignal],
) -> Result<OneOfThreeComparator, DatapathError> {
    if a.len() != b.len() || a.is_empty() {
        return Err(DatapathError::WidthMismatch {
            what: "comparator operands",
            expected: a.len().max(1),
            got: b.len(),
        });
    }

    // Per-bit greater / less / equal, each a single monotone wire.
    let width = a.len();
    let mut gt = Vec::with_capacity(width);
    let mut lt = Vec::with_capacity(width);
    let mut eq = Vec::with_capacity(width);
    for i in 0..width {
        let gt_i = dr.netlist_mut().add_cell(
            format!("{prefix}_gt{i}"),
            CellKind::And2,
            &[a[i].positive, b[i].negative],
        )?;
        let lt_i = dr.netlist_mut().add_cell(
            format!("{prefix}_lt{i}"),
            CellKind::And2,
            &[a[i].negative, b[i].positive],
        )?;
        let eq_i = dr.netlist_mut().add_cell(
            format!("{prefix}_eq{i}"),
            CellKind::Aoi22,
            &[a[i].positive, b[i].positive, a[i].negative, b[i].negative],
        )?;
        // AOI22 yields the complement with an inverted idle level; invert
        // it back so eq_i idles low like its gt/lt siblings.
        let eq_i = dr
            .netlist_mut()
            .add_cell(format!("{prefix}_eqb{i}"), CellKind::Inv, &[eq_i])?;
        gt.push(gt_i);
        lt.push(lt_i);
        eq.push(eq_i);
    }

    // Priority chains from the most significant bit downwards.
    let mut greater = gt[0];
    let mut less = lt[0];
    for i in 1..width {
        let masked_greater = dr.netlist_mut().add_cell(
            format!("{prefix}_gmask{i}"),
            CellKind::And2,
            &[eq[i], greater],
        )?;
        greater = dr.netlist_mut().add_cell(
            format!("{prefix}_gacc{i}"),
            CellKind::Or2,
            &[gt[i], masked_greater],
        )?;
        let masked_less = dr.netlist_mut().add_cell(
            format!("{prefix}_lmask{i}"),
            CellKind::And2,
            &[eq[i], less],
        )?;
        less = dr.netlist_mut().add_cell(
            format!("{prefix}_lacc{i}"),
            CellKind::Or2,
            &[lt[i], masked_less],
        )?;
    }
    let equal = dr
        .netlist_mut()
        .add_and_tree(&format!("{prefix}_eqall"), &eq)?;

    Ok(OneOfThreeComparator {
        less,
        equal,
        greater,
    })
}

/// Builds a conventional single-rail magnitude comparator producing the
/// same three (now plain Boolean) outputs for the synchronous baseline.
///
/// # Errors
///
/// Returns a width-mismatch error if the operands differ in width or are
/// empty; propagates construction errors.
pub fn single_rail_comparator(
    nl: &mut Netlist,
    prefix: &str,
    a: &[NetId],
    b: &[NetId],
) -> Result<OneOfThreeComparator, DatapathError> {
    if a.len() != b.len() || a.is_empty() {
        return Err(DatapathError::WidthMismatch {
            what: "comparator operands",
            expected: a.len().max(1),
            got: b.len(),
        });
    }
    let width = a.len();
    let mut gt = Vec::with_capacity(width);
    let mut lt = Vec::with_capacity(width);
    let mut eq = Vec::with_capacity(width);
    for i in 0..width {
        let not_b = nl.add_cell(format!("{prefix}_nb{i}"), CellKind::Inv, &[b[i]])?;
        let not_a = nl.add_cell(format!("{prefix}_na{i}"), CellKind::Inv, &[a[i]])?;
        gt.push(nl.add_cell(format!("{prefix}_gt{i}"), CellKind::And2, &[a[i], not_b])?);
        lt.push(nl.add_cell(format!("{prefix}_lt{i}"), CellKind::And2, &[not_a, b[i]])?);
        eq.push(nl.add_cell(format!("{prefix}_eq{i}"), CellKind::Xnor2, &[a[i], b[i]])?);
    }
    let mut greater = gt[0];
    let mut less = lt[0];
    for i in 1..width {
        let masked_greater = nl.add_cell(
            format!("{prefix}_gmask{i}"),
            CellKind::And2,
            &[eq[i], greater],
        )?;
        greater = nl.add_cell(
            format!("{prefix}_gacc{i}"),
            CellKind::Or2,
            &[gt[i], masked_greater],
        )?;
        let masked_less =
            nl.add_cell(format!("{prefix}_lmask{i}"), CellKind::And2, &[eq[i], less])?;
        less = nl.add_cell(
            format!("{prefix}_lacc{i}"),
            CellKind::Or2,
            &[lt[i], masked_less],
        )?;
    }
    let equal = nl.add_and_tree(&format!("{prefix}_eqall"), &eq)?;
    Ok(OneOfThreeComparator {
        less,
        equal,
        greater,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualrail::DualRailValue;
    use netlist::Evaluator;
    use std::collections::HashMap;

    fn expected_index(a: u32, b: u32) -> usize {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => 1,
            std::cmp::Ordering::Greater => 2,
        }
    }

    #[test]
    fn dual_rail_comparator_matches_integer_comparison() {
        let mut dr = DualRailNetlist::new("cmp");
        let a: Vec<DualRailSignal> = (0..4).map(|i| dr.add_dual_input(format!("a{i}"))).collect();
        let b: Vec<DualRailSignal> = (0..4).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let cmp = dual_rail_comparator(&mut dr, "cmp", &a, &b).unwrap();
        let eval = Evaluator::new(dr.netlist()).unwrap();

        for va in 0..16u32 {
            for vb in 0..16u32 {
                let mut map = HashMap::new();
                for (i, sig) in a.iter().enumerate() {
                    let (p, n) = DualRailValue::encode_valid(va & (1 << i) != 0, sig.polarity);
                    map.insert(sig.positive, p);
                    map.insert(sig.negative, n);
                }
                for (i, sig) in b.iter().enumerate() {
                    let (p, n) = DualRailValue::encode_valid(vb & (1 << i) != 0, sig.polarity);
                    map.insert(sig.positive, p);
                    map.insert(sig.negative, n);
                }
                let values = eval.eval(&map);
                let wires = [
                    values[cmp.less.index()],
                    values[cmp.equal.index()],
                    values[cmp.greater.index()],
                ];
                let high: Vec<usize> = wires
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(high.len(), 1, "exactly one output for a={va} b={vb}");
                assert_eq!(high[0], expected_index(va, vb), "a={va} b={vb}");
            }
        }
    }

    #[test]
    fn dual_rail_comparator_spacer_gives_all_low() {
        let mut dr = DualRailNetlist::new("cmp");
        let a: Vec<DualRailSignal> = (0..4).map(|i| dr.add_dual_input(format!("a{i}"))).collect();
        let b: Vec<DualRailSignal> = (0..4).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let cmp = dual_rail_comparator(&mut dr, "cmp", &a, &b).unwrap();
        let eval = Evaluator::new(dr.netlist()).unwrap();
        let mut map = HashMap::new();
        for sig in a.iter().chain(&b) {
            let (p, n) = DualRailValue::encode_spacer(sig.polarity);
            map.insert(sig.positive, p);
            map.insert(sig.negative, n);
        }
        let values = eval.eval(&map);
        assert!(!values[cmp.less.index()]);
        assert!(!values[cmp.equal.index()]);
        assert!(!values[cmp.greater.index()]);
    }

    #[test]
    fn dual_rail_comparator_is_unate() {
        let mut dr = DualRailNetlist::new("cmp");
        let a: Vec<DualRailSignal> = (0..4).map(|i| dr.add_dual_input(format!("a{i}"))).collect();
        let b: Vec<DualRailSignal> = (0..4).map(|i| dr.add_dual_input(format!("b{i}"))).collect();
        let _ = dual_rail_comparator(&mut dr, "cmp", &a, &b).unwrap();
        assert!(dualrail::check_unate(dr.netlist()).is_ok());
    }

    #[test]
    fn single_rail_comparator_matches_integer_comparison() {
        let mut nl = Netlist::new("cmp_sr");
        let a: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let cmp = single_rail_comparator(&mut nl, "cmp", &a, &b).unwrap();
        nl.add_output("less", cmp.less);
        nl.add_output("equal", cmp.equal);
        nl.add_output("greater", cmp.greater);
        let eval = Evaluator::new(&nl).unwrap();
        for va in 0..16u32 {
            for vb in 0..16u32 {
                let bits: Vec<bool> = (0..4)
                    .map(|i| va & (1 << i) != 0)
                    .chain((0..4).map(|i| vb & (1 << i) != 0))
                    .collect();
                let out = eval.eval_vector(&bits);
                let high: Vec<usize> = out
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(high, vec![expected_index(va, vb)], "a={va} b={vb}");
            }
        }
    }

    #[test]
    fn mismatched_widths_are_rejected() {
        let mut dr = DualRailNetlist::new("cmp");
        let a = vec![dr.add_dual_input("a0")];
        let b = vec![dr.add_dual_input("b0"), dr.add_dual_input("b1")];
        assert!(matches!(
            dual_rail_comparator(&mut dr, "cmp", &a, &b),
            Err(DatapathError::WidthMismatch { .. })
        ));
    }
}
