//! Multi-threaded batched inference: 64-lane passes sharded across
//! worker threads.
//!
//! [`crate::BatchInference`] packs a workload into 64-sample passes and
//! runs them one after another on one core.  The passes are independent
//! — the golden-model netlist is combinational and the exclude masks are
//! broadcast words shared by every pass — so [`ParallelBatchInference`]
//! distributes `feature_vectors().chunks(LANES)` across an
//! [`exec::Executor`]'s workers instead:
//!
//! * the flattened index program ([`netlist::BatchEvaluator`]) is shared
//!   read-only by every worker;
//! * each worker owns private scratch (primary-input words, net-value
//!   buffer, batch state), so chunks never share state mid-pass;
//! * the exclude-mask broadcast words are computed **once per workload**
//!   and copied into each worker's scratch, not recomputed per pass;
//! * per-chunk outcomes are merged back in input order, so the result is
//!   identical to [`crate::BatchInference::run_workload`] at any thread
//!   count (property-tested at threads 1, 2 and 7).
//!
//! # Example
//!
//! ```
//! use datapath::{BatchGoldenModel, DatapathConfig, InferenceWorkload, ParallelBatchInference};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = DatapathConfig::new(6, 4)?;
//! let model = BatchGoldenModel::generate(&config)?;
//! let parallel = ParallelBatchInference::new(&model, 2)?;
//!
//! let workload = InferenceWorkload::random(&config, 200, 0.7, 42)?;
//! let outcomes = parallel.run_workload(&workload)?;
//! assert_eq!(&outcomes, workload.expected());
//! # Ok(())
//! # }
//! ```

use exec::Executor;
use netlist::{BatchEvaluator, LANES};

use crate::batch::{
    broadcast_mask_words, check_masks, decode_lane_outcomes, pack_feature_words, BatchGoldenModel,
};
use crate::reference::InferenceOutcome;
use crate::workload::InferenceWorkload;
use crate::{DatapathConfig, DatapathError};

/// Multi-threaded batched inference over a [`BatchGoldenModel`].
///
/// Unlike [`crate::BatchInference`], the scratch buffers are per worker
/// rather than per instance, so `run_workload` takes `&self` and one
/// instance can serve many workloads (or threads) concurrently.
#[derive(Debug)]
pub struct ParallelBatchInference<'a> {
    evaluator: BatchEvaluator<'a>,
    config: DatapathConfig,
    executor: Executor,
}

impl<'a> ParallelBatchInference<'a> {
    /// Prepares the shared flattened evaluator and an executor with
    /// `threads` workers (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (a generated model is always acyclic).
    pub fn new(model: &'a BatchGoldenModel, threads: usize) -> Result<Self, DatapathError> {
        Self::with_executor(model, Executor::new(threads))
    }

    /// Like [`ParallelBatchInference::new`] with an explicit executor.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn with_executor(
        model: &'a BatchGoldenModel,
        executor: Executor,
    ) -> Result<Self, DatapathError> {
        Ok(Self {
            evaluator: BatchEvaluator::new(model.netlist())?,
            config: *model.config(),
            executor,
        })
    }

    /// Number of worker threads used per workload.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Number of samples evaluated per pass by each worker.
    #[must_use]
    pub fn lanes(&self) -> usize {
        LANES
    }

    /// Runs a whole workload through the batched model with the workload's
    /// 64-sample passes sharded across worker threads, and returns one
    /// outcome per operand, in operand order — bit-identical to
    /// [`crate::BatchInference::run_workload`].
    ///
    /// # Errors
    ///
    /// Returns width mismatches for masks or feature vectors that do not
    /// match the configuration, or decode failures for non-one-hot
    /// comparator outputs.
    pub fn run_workload(
        &self,
        workload: &InferenceWorkload,
    ) -> Result<Vec<InferenceOutcome>, DatapathError> {
        self.run_features(workload.masks(), workload.feature_vectors())
    }

    /// Runs an explicit batch of feature vectors (owned `&[Vec<bool>]`
    /// or borrowed `&[&[bool]]`, e.g. a serving micro-batch) against
    /// `masks`, 64-sample passes sharded across worker threads, and
    /// returns one outcome per vector in input order.
    ///
    /// # Errors
    ///
    /// See [`ParallelBatchInference::run_workload`].
    pub fn run_features<V: AsRef<[bool]> + Sync>(
        &self,
        masks: &tsetlin::ExcludeMasks,
        feature_vectors: &[V],
    ) -> Result<Vec<InferenceOutcome>, DatapathError> {
        check_masks(&self.config, masks)?;

        // The exclude masks are the trained model, identical for every
        // chunk: broadcast them into a template each worker copies once.
        let mut template = vec![0u64; self.evaluator.input_count()];
        broadcast_mask_words(masks, self.config.features(), &mut template);

        let features = self.config.features();
        let evaluator = &self.evaluator;
        let template = &template;
        let per_chunk = self.executor.map_chunks_with(
            feature_vectors,
            LANES,
            || (template.clone(), evaluator.new_state(), Vec::new()),
            move |(pi_words, state, values), _, chunk| {
                pack_feature_words(chunk, features, pi_words)?;
                let outputs = evaluator.eval_words(pi_words, state, values);
                decode_lane_outcomes(&outputs, chunk.len())
            },
        );

        let mut outcomes = Vec::with_capacity(feature_vectors.len());
        for chunk in per_chunk {
            outcomes.extend(chunk?);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchInference;

    #[test]
    fn parallel_matches_single_thread_and_golden_outcomes() {
        let config = DatapathConfig::new(6, 8).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        // 300 operands spans four full passes plus a 44-lane remainder.
        let workload = InferenceWorkload::random(&config, 300, 0.7, 23).unwrap();
        let mut single = BatchInference::new(&model).unwrap();
        let expected = single.run_workload(&workload).unwrap();
        assert_eq!(expected.as_slice(), workload.expected());

        for threads in [1, 2, 7] {
            let parallel = ParallelBatchInference::new(&model, threads).unwrap();
            assert_eq!(parallel.threads(), threads);
            let outcomes = parallel.run_workload(&workload).unwrap();
            assert_eq!(outcomes, expected, "threads = {threads}");
        }
    }

    #[test]
    fn mismatched_masks_are_rejected() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let other = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let parallel = ParallelBatchInference::new(&model, 2).unwrap();
        let workload = InferenceWorkload::random(&other, 4, 0.5, 1).unwrap();
        assert!(parallel.run_workload(&workload).is_err());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let config = DatapathConfig::new(3, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let parallel = ParallelBatchInference::new(&model, 0).unwrap();
        assert_eq!(parallel.threads(), 1);
        assert_eq!(parallel.lanes(), netlist::LANES);
        let workload = InferenceWorkload::random(&config, 10, 0.5, 1).unwrap();
        assert_eq!(
            parallel.run_workload(&workload).unwrap().as_slice(),
            workload.expected()
        );
    }
}
