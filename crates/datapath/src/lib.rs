//! Tsetlin-machine inference datapath generators.
//!
//! This crate builds the circuit the paper evaluates, in both design
//! styles:
//!
//! * [`DualRailDatapath`] — the proposed early-propagative dual-rail
//!   asynchronous datapath with C-element input latches, inverting-style
//!   clause logic, a Dalalah-style dual-rail population counter with
//!   explicit spacer inverters, an MSB-first magnitude comparator with a
//!   1-of-3 output and the reduced completion-detection scheme;
//! * [`SingleRailDatapath`] — the synchronous single-rail baseline with
//!   input/output flip-flops, XOR-based adders and a conventional
//!   comparator, whose clock period (and therefore latency) comes from
//!   static timing analysis.
//!
//! Both are generated from the same [`DatapathConfig`] and verified
//! against the same software golden model ([`mod@reference`]).
//!
//! For bulk scoring the crate also provides three inference runtimes
//! over the *unregistered* golden-model netlist ([`BatchGoldenModel`]):
//!
//! * [`BatchInference`] — 64 samples per pass in the bit lanes of a
//!   `u64` per net (the throughput spine);
//! * [`ParallelBatchInference`] — the same passes sharded across worker
//!   threads, bit-identical at any thread count;
//! * [`EventDrivenInference`] — per-operand event-driven simulation
//!   (return-to-zero cycles, sharded across workers) reporting the
//!   data-dependent injection→settle latency of every operand — the
//!   paper's figure of merit;
//! * [`DualRailInference`] — the same sharded per-operand measurement on
//!   the *dual-rail datapath itself*: full four-phase handshake cycles
//!   under the verified reset-phase contract, reporting spacer→valid
//!   and `done` latency per operand (the paper's Table I quantities).
//!
//! # Example
//!
//! ```
//! use datapath::{DatapathConfig, DualRailDatapath, reference};
//! use tsetlin::ExcludeMasks;
//! use dualrail::ProtocolDriver;
//! use celllib::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = DatapathConfig::new(4, 4)?;
//! let dp = DualRailDatapath::generate(&config)?;
//!
//! // All-excluded clauses: every clause outputs 0, so the vote is a tie.
//! let masks = ExcludeMasks::from_raw(
//!     vec![vec![true; 8]; 4],
//!     vec![vec![true; 8]; 4],
//!     4,
//! );
//! let features = vec![true, false, true, false];
//! let operand = dp.operand_bits(&features, &masks)?;
//!
//! let lib = Library::umc_ll();
//! let mut driver = ProtocolDriver::new(dp.circuit(), &lib)?;
//! let result = driver.apply_operand(&operand)?;
//! let decision = dp.decode_decision(&result)?;
//! let golden = reference::infer(&masks, &features);
//! assert_eq!(decision, golden.decision);
//! assert!(dp.decode_in_class(&result)?, "a tie counts as in-class");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod builder;
pub mod clause_logic;
pub mod comparator;
pub mod config;
pub mod dual_rail_event;
pub mod error;
pub mod event;
pub mod parallel;
pub mod popcount;
pub mod reference;
pub mod single_rail;
pub mod workload;

pub use batch::{BatchGoldenModel, BatchInference};
pub use builder::{CompletionScheme, DatapathOptions, DualRailDatapath};
pub use config::DatapathConfig;
pub use dual_rail_event::{DualRailInference, DualRailRun};
pub use error::DatapathError;
pub use event::{decode_operand_run, operand_bit_vectors, EventDrivenInference, EventDrivenRun};
pub use parallel::ParallelBatchInference;
pub use reference::{ComparatorDecision, InferenceOutcome};
pub use single_rail::SingleRailDatapath;
pub use workload::{InferenceWorkload, SampleRef};
