//! The complete dual-rail asynchronous inference datapath.

use dualrail::{
    CompletionReport, DualRailNetlist, DualRailSignal, DualRailValue, FullCompletion,
    OperandResult, ReducedCompletion,
};
use netlist::Netlist;
use tsetlin::ExcludeMasks;

use crate::clause_logic::dual_rail_clause;
use crate::comparator::dual_rail_comparator;
use crate::popcount::dual_rail_popcount8;
use crate::reference::{ComparatorDecision, InferenceOutcome};
use crate::{DatapathConfig, DatapathError};

/// Which completion-detection scheme the generated datapath uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompletionScheme {
    /// The paper's reduced scheme: only the primary outputs are observed;
    /// internal valid→spacer completion is covered by the grace period.
    #[default]
    Reduced,
    /// The conventional scheme observing internal signals as well
    /// (ablation baseline: more gates, no early `done`).
    Full,
}

/// Generation options beyond the basic dimensions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DatapathOptions {
    /// Completion-detection scheme to insert.
    pub completion: CompletionScheme,
    /// Whether to place C-element latches on every input rail (the
    /// asynchronous counterpart of the single-rail input registers).
    /// Enabled by default via [`DatapathOptions::default`] in
    /// [`DualRailDatapath::generate`].
    pub input_latches: bool,
}

impl DatapathOptions {
    /// The options used by [`DualRailDatapath::generate`]: reduced
    /// completion detection and C-element input latches.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            completion: CompletionScheme::Reduced,
            input_latches: true,
        }
    }
}

/// The generated dual-rail asynchronous Tsetlin-machine inference
/// datapath.
#[derive(Clone, Debug)]
pub struct DualRailDatapath {
    circuit: DualRailNetlist,
    config: DatapathConfig,
    options: DatapathOptions,
    completion: CompletionReport,
    clause_signals: Vec<DualRailSignal>,
    count_signals: Vec<DualRailSignal>,
}

impl DualRailDatapath {
    /// Generates the datapath with the paper's default options (reduced
    /// completion detection, C-element input latches).
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn generate(config: &DatapathConfig) -> Result<Self, DatapathError> {
        Self::generate_with(config, DatapathOptions::paper_defaults())
    }

    /// Generates the datapath with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn generate_with(
        config: &DatapathConfig,
        options: DatapathOptions,
    ) -> Result<Self, DatapathError> {
        let mut dr = DualRailNetlist::new("tm_inference_dual_rail");
        let clauses = config.clauses_per_polarity();
        let features_count = config.features();
        let literals = config.literals_per_clause();

        // Primary inputs: features first, then the exclude bundles of the
        // positive bank, then those of the negative bank.  The request
        // input gates the optional C-element input latches.
        let request = if options.input_latches {
            Some(dr.netlist_mut().add_input("req"))
        } else {
            None
        };
        let mut features: Vec<DualRailSignal> = (0..features_count)
            .map(|m| dr.add_dual_input(format!("f{m}")))
            .collect();
        let mut positive_excludes: Vec<Vec<DualRailSignal>> = (0..clauses)
            .map(|j| {
                (0..literals)
                    .map(|l| dr.add_dual_input(format!("ep{j}_{l}")))
                    .collect()
            })
            .collect();
        let mut negative_excludes: Vec<Vec<DualRailSignal>> = (0..clauses)
            .map(|j| {
                (0..literals)
                    .map(|l| dr.add_dual_input(format!("en{j}_{l}")))
                    .collect()
            })
            .collect();

        // Optional C-element input latches (the paper's asynchronous
        // replacement for the single-rail input flip-flops).
        if let Some(req) = request {
            features = features
                .iter()
                .enumerate()
                .map(|(m, &sig)| dr.latch(&format!("lat_f{m}"), sig, req))
                .collect::<Result<_, _>>()?;
            positive_excludes = positive_excludes
                .iter()
                .enumerate()
                .map(|(j, bundle)| {
                    bundle
                        .iter()
                        .enumerate()
                        .map(|(l, &sig)| dr.latch(&format!("lat_ep{j}_{l}"), sig, req))
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?;
            negative_excludes = negative_excludes
                .iter()
                .enumerate()
                .map(|(j, bundle)| {
                    bundle
                        .iter()
                        .enumerate()
                        .map(|(l, &sig)| dr.latch(&format!("lat_en{j}_{l}"), sig, req))
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?;
        }

        // Clause banks.
        let mut clause_signals = Vec::with_capacity(2 * clauses);
        let mut positive_clauses = Vec::with_capacity(clauses);
        for (j, bundle) in positive_excludes.iter().enumerate() {
            let clause = dual_rail_clause(&mut dr, &format!("cp{j}"), &features, bundle)?;
            positive_clauses.push(clause);
            clause_signals.push(clause);
        }
        let mut negative_clauses = Vec::with_capacity(clauses);
        for (j, bundle) in negative_excludes.iter().enumerate() {
            let clause = dual_rail_clause(&mut dr, &format!("cn{j}"), &features, bundle)?;
            negative_clauses.push(clause);
            clause_signals.push(clause);
        }

        // Population counters.  The count bits are internal — exporting
        // them as primary outputs would change the completion network —
        // but the inference decoders need them, so they are declared as
        // protocol *probes*: decoded every valid phase, never observed
        // by the handshake.
        let positive_count = dual_rail_popcount8(&mut dr, "pcp", &positive_clauses)?;
        let negative_count = dual_rail_popcount8(&mut dr, "pcn", &negative_clauses)?;
        let count_signals: Vec<DualRailSignal> = positive_count
            .iter()
            .chain(negative_count.iter())
            .copied()
            .collect();
        for (i, &bit) in positive_count.iter().enumerate() {
            dr.declare_probe(format!("pcp{i}"), bit);
        }
        for (i, &bit) in negative_count.iter().enumerate() {
            dr.declare_probe(format!("pcn{i}"), bit);
        }

        // Magnitude comparator with the 1-of-3 output.
        let comparator = dual_rail_comparator(&mut dr, "cmp", &positive_count, &negative_count)?;
        dr.add_one_of_n_output("cmp", comparator.wires());

        // Completion detection.  The full scheme additionally observes the
        // clause outputs — genuine internal dual-rail signals that always
        // cycle through the spacer.  The count bits are not observed: when
        // the counter is padded (fewer than eight clauses per polarity)
        // its upper bits are partially constant and would hold `done` high
        // forever.
        let completion = match options.completion {
            CompletionScheme::Reduced => ReducedCompletion::insert(&mut dr)?,
            CompletionScheme::Full => FullCompletion::insert(&mut dr, &clause_signals)?,
        };

        Ok(Self {
            circuit: dr,
            config: *config,
            options,
            completion,
            clause_signals,
            count_signals,
        })
    }

    /// The dual-rail circuit (for protocol driving and CD inspection).
    #[must_use]
    pub fn circuit(&self) -> &DualRailNetlist {
        &self.circuit
    }

    /// The underlying flat netlist (for STA, area and power accounting).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.circuit.netlist()
    }

    /// The configuration this datapath was generated from.
    #[must_use]
    pub fn config(&self) -> &DatapathConfig {
        &self.config
    }

    /// The options this datapath was generated with.
    #[must_use]
    pub fn options(&self) -> &DatapathOptions {
        &self.options
    }

    /// The completion-detection insertion report.
    #[must_use]
    pub fn completion(&self) -> &CompletionReport {
        &self.completion
    }

    /// The dual-rail clause outputs (positive bank first), useful for
    /// distribution analyses and the full-CD ablation.
    #[must_use]
    pub fn clause_signals(&self) -> &[DualRailSignal] {
        &self.clause_signals
    }

    /// The dual-rail population-count outputs (positive bank's four bits,
    /// then the negative bank's four bits).
    #[must_use]
    pub fn count_signals(&self) -> &[DualRailSignal] {
        &self.count_signals
    }

    /// Flattens a feature vector and a set of exclude masks into the
    /// operand bit vector expected by
    /// [`dualrail::ProtocolDriver::apply_operand`] (one bit per dual-rail
    /// input, in declaration order).
    ///
    /// # Errors
    ///
    /// Returns width-mismatch errors if the feature vector or the masks
    /// do not match this datapath's configuration.
    pub fn operand_bits(
        &self,
        features: &[bool],
        masks: &ExcludeMasks,
    ) -> Result<Vec<bool>, DatapathError> {
        if features.len() != self.config.features() {
            return Err(DatapathError::WidthMismatch {
                what: "feature vector",
                expected: self.config.features(),
                got: features.len(),
            });
        }
        if masks.feature_count() != self.config.features() {
            return Err(DatapathError::WidthMismatch {
                what: "exclude masks (feature count)",
                expected: self.config.features(),
                got: masks.feature_count(),
            });
        }
        if masks.clauses_per_polarity() != self.config.clauses_per_polarity() {
            return Err(DatapathError::WidthMismatch {
                what: "exclude masks (clause count)",
                expected: self.config.clauses_per_polarity(),
                got: masks.clauses_per_polarity(),
            });
        }
        let mut bits = Vec::with_capacity(self.config.data_input_count());
        bits.extend_from_slice(features);
        for mask in masks.positive() {
            bits.extend_from_slice(mask);
        }
        for mask in masks.negative() {
            bits.extend_from_slice(mask);
        }
        Ok(bits)
    }

    /// Decodes the comparator's 1-of-3 output from a protocol-driver
    /// result.  The vote counts themselves are internal to the datapath
    /// (the paper's primary output is the comparison); use
    /// [`crate::reference::infer`] for the golden counts.
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::DecodeFailure`] if the comparator group
    /// is missing from the result or carries an invalid index.
    pub fn decode_decision(
        &self,
        result: &OperandResult,
    ) -> Result<ComparatorDecision, DatapathError> {
        let (_, index) = result
            .one_of_n
            .iter()
            .find(|(name, _)| name == "cmp")
            .ok_or_else(|| {
                DatapathError::DecodeFailure("comparator 1-of-3 group missing".to_string())
            })?;
        ComparatorDecision::from_index(*index).ok_or_else(|| {
            DatapathError::DecodeFailure(format!("invalid comparator index {index}"))
        })
    }

    /// Whether a protocol-driver result classifies the operand as
    /// belonging to the class (non-negative vote sum, i.e. the comparator
    /// did not report "less").
    ///
    /// # Errors
    ///
    /// Propagates [`DualRailDatapath::decode_decision`] failures.
    pub fn decode_in_class(&self, result: &OperandResult) -> Result<bool, DatapathError> {
        Ok(self.decode_decision(result)? != ComparatorDecision::Less)
    }

    /// Decodes the two hardware vote counts `(positive, negative)` from
    /// the count-signal probes the generator declares (`pcp0..pcp3`,
    /// `pcn0..pcn3`, LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::DecodeFailure`] if a count probe is
    /// missing from the result or did not settle to a valid codeword.
    pub fn decode_votes(&self, result: &OperandResult) -> Result<(usize, usize), DatapathError> {
        let count = |prefix: &str| -> Result<usize, DatapathError> {
            (0..4).try_fold(0usize, |acc, i| {
                let name = format!("{prefix}{i}");
                let value = result
                    .probes
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| {
                        DatapathError::DecodeFailure(format!("count probe {name:?} missing"))
                    })?;
                match value {
                    DualRailValue::Valid(bit) => Ok(acc + (usize::from(bit) << i)),
                    other => Err(DatapathError::DecodeFailure(format!(
                        "count probe {name:?} is {other:?} when a valid codeword was expected"
                    ))),
                }
            })
        };
        Ok((count("pcp")?, count("pcn")?))
    }

    /// Decodes a protocol-driver result into the full
    /// [`InferenceOutcome`] (comparator decision plus both hardware vote
    /// counts), directly comparable with the software golden model.
    ///
    /// # Errors
    ///
    /// Propagates [`DualRailDatapath::decode_decision`] and
    /// [`DualRailDatapath::decode_votes`] failures.
    pub fn decode_outcome(
        &self,
        result: &OperandResult,
    ) -> Result<InferenceOutcome, DatapathError> {
        let decision = self.decode_decision(result)?;
        let (positive_votes, negative_votes) = self.decode_votes(result)?;
        Ok(InferenceOutcome {
            positive_votes,
            negative_votes,
            decision,
            in_class: decision != ComparatorDecision::Less,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::workload::InferenceWorkload;
    use celllib::Library;
    use dualrail::ProtocolDriver;
    use netlist::NetlistStats;

    fn small_config() -> DatapathConfig {
        DatapathConfig::new(3, 4).unwrap()
    }

    #[test]
    fn generated_datapath_is_structurally_sound() {
        let dp = DualRailDatapath::generate(&small_config()).unwrap();
        dp.netlist().validate().unwrap();
        assert!(dualrail::check_unate(dp.netlist()).is_ok());
        assert!(dp.circuit().done().is_some());
        assert_eq!(dp.clause_signals().len(), 8);
        assert_eq!(dp.count_signals().len(), 8);
        let stats = NetlistStats::of(dp.netlist());
        // C-element input latches: two per dual-rail data input, plus the
        // completion-detection C-element tree.
        assert!(stats.sequential_count >= 2 * dp.config().data_input_count());
        assert_eq!(dp.options(), &DatapathOptions::paper_defaults());
    }

    #[test]
    fn dual_rail_datapath_matches_reference_over_a_workload() {
        let config = small_config();
        let dp = DualRailDatapath::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 12, 0.6, 21).unwrap();
        let lib = Library::umc_ll();
        let mut driver = ProtocolDriver::new(dp.circuit(), &lib).unwrap();
        let operands = workload.dual_rail_operands(&dp).unwrap();
        for (operand, expected) in operands.iter().zip(workload.expected()) {
            let result = driver.apply_operand(operand).unwrap();
            let decision = dp.decode_decision(&result).unwrap();
            assert_eq!(decision, expected.decision);
            assert_eq!(dp.decode_in_class(&result).unwrap(), expected.in_class);
            assert!(result.s_to_v_latency_ps > 0.0);
        }
    }

    #[test]
    fn full_completion_costs_more_than_reduced() {
        let config = small_config();
        let reduced = DualRailDatapath::generate(&config).unwrap();
        let full = DualRailDatapath::generate_with(
            &config,
            DatapathOptions {
                completion: CompletionScheme::Full,
                input_latches: true,
            },
        )
        .unwrap();
        assert!(full.completion().gates_added > reduced.completion().gates_added);
        assert!(full.completion().observed_groups > reduced.completion().observed_groups);
    }

    #[test]
    fn datapath_without_latches_has_fewer_sequential_cells() {
        let config = small_config();
        let latched = DualRailDatapath::generate(&config).unwrap();
        let unlatched = DualRailDatapath::generate_with(
            &config,
            DatapathOptions {
                completion: CompletionScheme::Reduced,
                input_latches: false,
            },
        )
        .unwrap();
        let seq = |dp: &DualRailDatapath| NetlistStats::of(dp.netlist()).sequential_count;
        assert!(seq(&latched) > seq(&unlatched));
    }

    #[test]
    fn operand_bits_round_trips_reference_outcomes() {
        let config = small_config();
        let dp = DualRailDatapath::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 4, 0.5, 3).unwrap();
        for (vector, expected) in workload.feature_vectors().iter().zip(workload.expected()) {
            let bits = dp.operand_bits(vector, workload.masks()).unwrap();
            assert_eq!(bits.len(), config.data_input_count());
            assert_eq!(reference::infer(workload.masks(), vector), *expected);
        }
    }

    #[test]
    fn mismatched_operand_inputs_are_rejected() {
        let config = small_config();
        let dp = DualRailDatapath::generate(&config).unwrap();
        let wrong_masks =
            tsetlin::ExcludeMasks::from_raw(vec![vec![true; 4]; 4], vec![vec![true; 4]; 4], 2);
        assert!(dp.operand_bits(&[true, false, true], &wrong_masks).is_err());
        let masks =
            tsetlin::ExcludeMasks::from_raw(vec![vec![true; 6]; 4], vec![vec![true; 6]; 4], 3);
        assert!(dp.operand_bits(&[true, false], &masks).is_err());
    }
}
