//! Index newtypes used throughout the netlist representation.
//!
//! All collections inside a [`crate::Netlist`] are flat vectors; these
//! newtypes make the indices type-safe so a [`CellId`] can never be used
//! to index the net table and vice versa ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Identifier of a net (wire) inside a [`crate::Netlist`].
///
/// # Example
///
/// ```
/// use netlist::{Netlist, NetId};
/// let mut nl = Netlist::new("t");
/// let a: NetId = nl.add_input("a");
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

/// Identifier of a cell (gate instance) inside a [`crate::Netlist`].
///
/// # Example
///
/// ```
/// use netlist::{Netlist, CellKind};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let y = nl.add_cell("inv", CellKind::Inv, &[a]).unwrap();
/// let cell = nl.driver_cell(y).unwrap();
/// assert_eq!(nl.cell(cell).name(), "inv");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

/// Identifier of a primary port (input or output) of a [`crate::Netlist`].
///
/// # Example
///
/// ```
/// use netlist::Netlist;
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let port = nl.port_of_net(a).expect("input net has a port");
/// assert_eq!(nl.port(port).name(), "a");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub(crate) u32);

macro_rules! impl_id {
    ($ty:ident, $tag:literal) => {
        impl $ty {
            /// Creates an identifier from a raw index.
            ///
            /// Intended for serialization round-trips and test construction;
            /// an identifier fabricated for a different netlist will cause a
            /// panic (out of range) or silently refer to the wrong element
            /// when used, so prefer the ids returned by builder methods.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index of this identifier.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

impl_id!(NetId, "n");
impl_id!(CellId, "c");
impl_id!(PortId, "p");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let n = NetId::from_index(42);
        assert_eq!(n.index(), 42);
        let c = CellId::from_index(7);
        assert_eq!(c.index(), 7);
        let p = PortId::from_index(0);
        assert_eq!(p.index(), 0);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", NetId::from_index(3)), "n3");
        assert_eq!(format!("{:?}", CellId::from_index(4)), "c4");
        assert_eq!(format!("{}", PortId::from_index(5)), "p5");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NetId::from_index(1) < NetId::from_index(2));
        assert!(CellId::from_index(0) < CellId::from_index(10));
    }
}
