//! Standard-cell primitives: gate kinds, pin counts, unateness and
//! boolean evaluation.
//!
//! The kinds listed here mirror the cells used by the paper's designs:
//! simple unate gates (INV/BUF/AND/OR/NAND/NOR), the non-unate XOR/XNOR
//! pair (allowed only in single-rail synchronous designs, excluded from
//! dual-rail netlists — Requirement 2 of the paper), complex
//! AND-OR-INVERT / OR-AND-INVERT gates used by the dual-rail half and
//! full adders, the Muller C-element used as the asynchronous latch, and
//! a D flip-flop for the synchronous baseline.

use std::fmt;

/// Unateness of a cell input: how the output responds to a rising input.
///
/// Monotonic (unate) switching is Requirement 2 of the paper's
/// self-timing methodology: dual-rail netlists must be built exclusively
/// from unate gates so that a spacer→valid wavefront never causes a
/// 1→0→1 glitch.
///
/// # Example
///
/// ```
/// use netlist::{CellKind, Unateness};
/// assert_eq!(CellKind::And2.unateness(0), Unateness::Positive);
/// assert_eq!(CellKind::Nor2.unateness(1), Unateness::Negative);
/// assert_eq!(CellKind::Xor2.unateness(0), Unateness::NonUnate);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Unateness {
    /// A rising input can only cause the output to rise (or stay).
    Positive,
    /// A rising input can only cause the output to fall (or stay).
    Negative,
    /// The output may rise or fall for a rising input (e.g. XOR).
    NonUnate,
}

impl Unateness {
    /// Returns `true` unless the input is [`Unateness::NonUnate`].
    #[must_use]
    pub fn is_unate(self) -> bool {
        !matches!(self, Unateness::NonUnate)
    }
}

/// The kind (library function) of a primitive cell.
///
/// Every kind has exactly one output pin and a fixed number of input
/// pins given by [`CellKind::input_count`].
///
/// # Example
///
/// ```
/// use netlist::CellKind;
/// assert_eq!(CellKind::Aoi22.input_count(), 4);
/// assert!(CellKind::CElement2.is_sequential());
/// assert!(!CellKind::Nand3.is_sequential());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// 2-input XOR (non-unate; forbidden in dual-rail netlists).
    Xor2,
    /// 2-input XNOR (non-unate; forbidden in dual-rail netlists).
    Xnor2,
    /// AND-OR-INVERT 21: `!((a & b) | c)`.
    Aoi21,
    /// AND-OR-INVERT 22: `!((a & b) | (c & d))`.
    Aoi22,
    /// AND-OR-INVERT 32: `!((a & b & c) | (d & e))`.
    Aoi32,
    /// OR-AND-INVERT 21: `!((a | b) & c)`.
    Oai21,
    /// OR-AND-INVERT 22: `!((a | b) & (c | d))`.
    Oai22,
    /// 3-input majority gate: `ab | bc | ca`.
    Maj3,
    /// 2-input Muller C-element (state-holding): output rises when both
    /// inputs are 1, falls when both are 0, otherwise holds.
    CElement2,
    /// 3-input Muller C-element.
    CElement3,
    /// Rising-edge D flip-flop. Pin 0 = `d`, pin 1 = `clk`.
    Dff,
    /// Constant logic 0 source (no inputs).
    Tie0,
    /// Constant logic 1 source (no inputs).
    Tie1,
}

impl CellKind {
    /// Upper bound on [`CellKind::input_count`] across all kinds (AOI32
    /// has 5), with headroom so evaluators can gather gate inputs into
    /// fixed-capacity stack buffers.  Pinned by a unit test; any new
    /// kind with more inputs must raise it.
    pub const MAX_INPUTS: usize = 8;

    /// All cell kinds, in a stable order (useful for histograms and
    /// exhaustive tests).
    pub const ALL: [CellKind; 27] = [
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::And3,
        CellKind::And4,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Or4,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nand4,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::Nor4,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Aoi22,
        CellKind::Aoi32,
        CellKind::Oai21,
        CellKind::Oai22,
        CellKind::Maj3,
        CellKind::CElement2,
        CellKind::CElement3,
        CellKind::Dff,
        CellKind::Tie0,
        CellKind::Tie1,
    ];

    /// Number of input pins of this kind.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::CElement2
            | CellKind::Dff => 2,
            CellKind::And3
            | CellKind::Or3
            | CellKind::Nand3
            | CellKind::Nor3
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Maj3
            | CellKind::CElement3 => 3,
            CellKind::And4
            | CellKind::Or4
            | CellKind::Nand4
            | CellKind::Nor4
            | CellKind::Aoi22
            | CellKind::Oai22 => 4,
            CellKind::Aoi32 => 5,
        }
    }

    /// Whether this cell holds state between evaluations.
    ///
    /// The paper counts C-element area as "sequential area" for the
    /// dual-rail designs, mirroring the flip-flop area of the single-rail
    /// designs.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellKind::CElement2 | CellKind::CElement3 | CellKind::Dff
        )
    }

    /// Whether the output logic level is an inversion of the "natural"
    /// polarity of its inputs (single inversion from every input).
    ///
    /// Used by the dual-rail expansion to track spacer polarity: a path
    /// through an inverting gate flips an all-zero spacer into an
    /// all-one spacer and vice versa.
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            CellKind::Inv
                | CellKind::Nand2
                | CellKind::Nand3
                | CellKind::Nand4
                | CellKind::Nor2
                | CellKind::Nor3
                | CellKind::Nor4
                | CellKind::Aoi21
                | CellKind::Aoi22
                | CellKind::Aoi32
                | CellKind::Oai21
                | CellKind::Oai22
                | CellKind::Xnor2
        )
    }

    /// Unateness of input pin `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= self.input_count()`.
    #[must_use]
    pub fn unateness(self, pin: usize) -> Unateness {
        assert!(
            pin < self.input_count(),
            "pin {pin} out of range for {self:?} with {} inputs",
            self.input_count()
        );
        match self {
            CellKind::Buf
            | CellKind::And2
            | CellKind::And3
            | CellKind::And4
            | CellKind::Or2
            | CellKind::Or3
            | CellKind::Or4
            | CellKind::Maj3
            | CellKind::CElement2
            | CellKind::CElement3
            | CellKind::Dff => Unateness::Positive,
            CellKind::Inv
            | CellKind::Nand2
            | CellKind::Nand3
            | CellKind::Nand4
            | CellKind::Nor2
            | CellKind::Nor3
            | CellKind::Nor4
            | CellKind::Aoi21
            | CellKind::Aoi22
            | CellKind::Aoi32
            | CellKind::Oai21
            | CellKind::Oai22 => Unateness::Negative,
            CellKind::Xor2 | CellKind::Xnor2 => Unateness::NonUnate,
            CellKind::Tie0 | CellKind::Tie1 => {
                unreachable!("tie cells have no input pins")
            }
        }
    }

    /// Whether every input pin of this kind is unate (monotonic).
    ///
    /// Dual-rail netlists must satisfy this for every cell
    /// (Requirement 2 of the paper).
    #[must_use]
    pub fn is_unate(self) -> bool {
        (0..self.input_count()).all(|p| self.unateness(p).is_unate())
    }

    /// Evaluates the cell function over two-valued inputs.
    ///
    /// `prev` supplies the previous output value for state-holding kinds
    /// ([`CellKind::CElement2`], [`CellKind::CElement3`],
    /// [`CellKind::Dff`]); it is ignored by combinational kinds.  For a
    /// flip-flop this returns the *held* value — clock-edge capture is
    /// the responsibility of the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    ///
    /// # Example
    ///
    /// ```
    /// use netlist::CellKind;
    /// assert!(CellKind::Aoi21.eval(&[true, false, false], None));
    /// assert!(!CellKind::Aoi21.eval(&[true, true, false], None));
    /// // A C-element holds its value while inputs disagree.
    /// assert!(CellKind::CElement2.eval(&[true, false], Some(true)));
    /// assert!(!CellKind::CElement2.eval(&[true, false], Some(false)));
    /// ```
    #[must_use]
    pub fn eval(self, inputs: &[bool], prev: Option<bool>) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 | CellKind::And3 | CellKind::And4 => inputs.iter().all(|&b| b),
            CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => inputs.iter().any(|&b| b),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !inputs.iter().all(|&b| b),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => !inputs.iter().any(|&b| b),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            CellKind::Aoi22 => !((inputs[0] && inputs[1]) || (inputs[2] && inputs[3])),
            CellKind::Aoi32 => !((inputs[0] && inputs[1] && inputs[2]) || (inputs[3] && inputs[4])),
            CellKind::Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
            CellKind::Oai22 => !((inputs[0] || inputs[1]) && (inputs[2] || inputs[3])),
            CellKind::Maj3 => inputs.iter().filter(|&&b| b).count() >= 2,
            CellKind::CElement2 | CellKind::CElement3 => {
                if inputs.iter().all(|&b| b) {
                    true
                } else if inputs.iter().all(|&b| !b) {
                    false
                } else {
                    prev.unwrap_or(false)
                }
            }
            CellKind::Dff => prev.unwrap_or(false),
            CellKind::Tie0 => false,
            CellKind::Tie1 => true,
        }
    }

    /// Evaluates the cell function bitwise over 64 independent samples
    /// packed into `u64` words (lane `i` of every word belongs to
    /// sample `i`).
    ///
    /// This is the kernel of the batched golden model
    /// ([`crate::BatchEvaluator`]): one call computes what 64 calls of
    /// [`CellKind::eval`] would, using plain word-wide boolean
    /// instructions.  `prev` supplies the previous output word for the
    /// state-holding kinds and is ignored by combinational kinds.  As in
    /// the scalar evaluator, a flip-flop returns its *held* word;
    /// capture sequencing is the caller's responsibility.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    ///
    /// # Example
    ///
    /// ```
    /// use netlist::CellKind;
    /// // Lane 0: 1 & 1 = 1; lane 1: 1 & 0 = 0.
    /// assert_eq!(CellKind::And2.eval_word(&[0b11, 0b01], 0), 0b01);
    /// // A C-element holds `prev` in lanes where its inputs disagree.
    /// assert_eq!(CellKind::CElement2.eval_word(&[0b110, 0b100], 0b010), 0b110);
    /// ```
    #[must_use]
    pub fn eval_word(self, inputs: &[u64], prev: u64) -> u64 {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        fn and_all(inputs: &[u64]) -> u64 {
            inputs.iter().fold(u64::MAX, |acc, &w| acc & w)
        }
        fn or_all(inputs: &[u64]) -> u64 {
            inputs.iter().fold(0, |acc, &w| acc | w)
        }
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 | CellKind::And3 | CellKind::And4 => and_all(inputs),
            CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => or_all(inputs),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !and_all(inputs),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => !or_all(inputs),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            CellKind::Aoi32 => !((inputs[0] & inputs[1] & inputs[2]) | (inputs[3] & inputs[4])),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
            CellKind::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[1] & inputs[2]) | (inputs[0] & inputs[2])
            }
            CellKind::CElement2 | CellKind::CElement3 => {
                // Set where all inputs are 1, clear where all are 0, hold
                // `prev` in every mixed lane.
                and_all(inputs) | (prev & or_all(inputs))
            }
            CellKind::Dff => prev,
            CellKind::Tie0 => 0,
            CellKind::Tie1 => u64::MAX,
        }
    }

    /// Evaluates the cell over three-valued inputs (`None` = unknown X).
    ///
    /// Implements controlling-value semantics: an AND with any 0 input is
    /// 0 even if other inputs are unknown, an OR with any 1 input is 1,
    /// and so on.  Used by the event-driven simulator for X-initialised
    /// nets.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    #[must_use]
    pub fn eval_tristate(self, inputs: &[Option<bool>], prev: Option<bool>) -> Option<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );

        fn and_all(vals: &[Option<bool>]) -> Option<bool> {
            if vals.contains(&Some(false)) {
                Some(false)
            } else if vals.iter().all(|v| *v == Some(true)) {
                Some(true)
            } else {
                None
            }
        }
        fn or_all(vals: &[Option<bool>]) -> Option<bool> {
            if vals.contains(&Some(true)) {
                Some(true)
            } else if vals.iter().all(|v| *v == Some(false)) {
                Some(false)
            } else {
                None
            }
        }
        fn not(v: Option<bool>) -> Option<bool> {
            v.map(|b| !b)
        }

        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => not(inputs[0]),
            CellKind::And2 | CellKind::And3 | CellKind::And4 => and_all(inputs),
            CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => or_all(inputs),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => not(and_all(inputs)),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => not(or_all(inputs)),
            CellKind::Xor2 => match (inputs[0], inputs[1]) {
                (Some(a), Some(b)) => Some(a ^ b),
                _ => None,
            },
            CellKind::Xnor2 => match (inputs[0], inputs[1]) {
                (Some(a), Some(b)) => Some(!(a ^ b)),
                _ => None,
            },
            CellKind::Aoi21 => not(or_all(&[and_all(&inputs[0..2]), inputs[2]])),
            CellKind::Aoi22 => not(or_all(&[and_all(&inputs[0..2]), and_all(&inputs[2..4])])),
            CellKind::Aoi32 => not(or_all(&[and_all(&inputs[0..3]), and_all(&inputs[3..5])])),
            CellKind::Oai21 => not(and_all(&[or_all(&inputs[0..2]), inputs[2]])),
            CellKind::Oai22 => not(and_all(&[or_all(&inputs[0..2]), or_all(&inputs[2..4])])),
            CellKind::Maj3 => {
                let ab = and_all(&inputs[0..2]);
                let bc = and_all(&inputs[1..3]);
                let ac = and_all(&[inputs[0], inputs[2]]);
                or_all(&[ab, bc, ac])
            }
            CellKind::CElement2 | CellKind::CElement3 => {
                if inputs.iter().all(|v| *v == Some(true)) {
                    Some(true)
                } else if inputs.iter().all(|v| *v == Some(false)) {
                    Some(false)
                } else {
                    prev
                }
            }
            CellKind::Dff => prev,
            CellKind::Tie0 => Some(false),
            CellKind::Tie1 => Some(true),
        }
    }

    /// A short library-style name for this kind (e.g. `"AOI22"`).
    #[must_use]
    pub fn library_name(self) -> &'static str {
        match self {
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::And3 => "AND3",
            CellKind::And4 => "AND4",
            CellKind::Or2 => "OR2",
            CellKind::Or3 => "OR3",
            CellKind::Or4 => "OR4",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nand4 => "NAND4",
            CellKind::Nor2 => "NOR2",
            CellKind::Nor3 => "NOR3",
            CellKind::Nor4 => "NOR4",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Aoi22 => "AOI22",
            CellKind::Aoi32 => "AOI32",
            CellKind::Oai21 => "OAI21",
            CellKind::Oai22 => "OAI22",
            CellKind::Maj3 => "MAJ3",
            CellKind::CElement2 => "C2",
            CellKind::CElement3 => "C3",
            CellKind::Dff => "DFF",
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.library_name())
    }
}

/// An instantiated cell inside a [`crate::Netlist`]: a kind, a name, its
/// input nets and its single output net.
///
/// Cells are created through [`crate::Netlist::add_cell`]; the struct is
/// read-only once created.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) kind: CellKind,
    pub(crate) inputs: Vec<crate::NetId>,
    pub(crate) output: crate::NetId,
}

impl Cell {
    /// Instance name of the cell.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Library kind of the cell.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets, ordered by pin index.
    #[must_use]
    pub fn inputs(&self) -> &[crate::NetId] {
        &self.inputs
    }

    /// The single output net.
    #[must_use]
    pub fn output(&self) -> crate::NetId {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_inputs_bounds_every_kind() {
        let max = CellKind::ALL.iter().map(|k| k.input_count()).max().unwrap();
        assert!(
            max <= CellKind::MAX_INPUTS,
            "a kind has {max} inputs but MAX_INPUTS is {}",
            CellKind::MAX_INPUTS
        );
    }

    #[test]
    fn input_counts_match_truth_tables() {
        for kind in CellKind::ALL {
            let n = kind.input_count();
            // Exhaustively evaluate every input combination; must not panic.
            for pattern in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
                let _ = kind.eval(&inputs, Some(false));
            }
        }
    }

    #[test]
    fn simple_gate_truth_tables() {
        assert!(CellKind::And2.eval(&[true, true], None));
        assert!(!CellKind::And2.eval(&[true, false], None));
        assert!(CellKind::Or3.eval(&[false, false, true], None));
        assert!(!CellKind::Nor2.eval(&[false, true], None));
        assert!(CellKind::Nand4.eval(&[true, true, true, false], None));
        assert!(!CellKind::Nand4.eval(&[true, true, true, true], None));
        assert!(CellKind::Xor2.eval(&[true, false], None));
        assert!(!CellKind::Xor2.eval(&[true, true], None));
        assert!(CellKind::Xnor2.eval(&[true, true], None));
    }

    #[test]
    fn complex_gate_truth_tables() {
        // AOI21 = !((a&b)|c)
        assert!(CellKind::Aoi21.eval(&[false, true, false], None));
        assert!(!CellKind::Aoi21.eval(&[true, true, false], None));
        assert!(!CellKind::Aoi21.eval(&[false, false, true], None));
        // AOI22 = !((a&b)|(c&d))
        assert!(CellKind::Aoi22.eval(&[false, true, true, false], None));
        assert!(!CellKind::Aoi22.eval(&[true, true, false, false], None));
        // AOI32 = !((a&b&c)|(d&e))
        assert!(!CellKind::Aoi32.eval(&[true, true, true, false, false], None));
        assert!(!CellKind::Aoi32.eval(&[false, false, false, true, true], None));
        assert!(CellKind::Aoi32.eval(&[true, true, false, true, false], None));
        // OAI21 = !((a|b)&c)
        assert!(CellKind::Oai21.eval(&[true, false, false], None));
        assert!(!CellKind::Oai21.eval(&[true, false, true], None));
        // OAI22 = !((a|b)&(c|d))
        assert!(!CellKind::Oai22.eval(&[true, false, false, true], None));
        assert!(CellKind::Oai22.eval(&[false, false, true, true], None));
        // MAJ3
        assert!(CellKind::Maj3.eval(&[true, true, false], None));
        assert!(!CellKind::Maj3.eval(&[true, false, false], None));
    }

    #[test]
    fn c_element_holds_state() {
        let c = CellKind::CElement2;
        assert!(c.eval(&[true, true], Some(false)));
        assert!(!c.eval(&[false, false], Some(true)));
        assert!(c.eval(&[true, false], Some(true)));
        assert!(!c.eval(&[false, true], Some(false)));
        // Without previous state, disagreeing inputs resolve to 0.
        assert!(!c.eval(&[true, false], None));
    }

    #[test]
    fn c_element3_requires_all_inputs() {
        let c = CellKind::CElement3;
        assert!(c.eval(&[true, true, true], Some(false)));
        assert!(c.eval(&[true, true, false], Some(true)));
        assert!(!c.eval(&[false, false, false], Some(true)));
    }

    #[test]
    fn unateness_classification() {
        assert!(CellKind::And4.is_unate());
        assert!(CellKind::Nor3.is_unate());
        assert!(CellKind::Aoi32.is_unate());
        assert!(CellKind::CElement2.is_unate());
        assert!(!CellKind::Xor2.is_unate());
        assert!(!CellKind::Xnor2.is_unate());
        assert_eq!(CellKind::Oai22.unateness(3), Unateness::Negative);
        assert_eq!(CellKind::Maj3.unateness(2), Unateness::Positive);
    }

    #[test]
    fn inverting_classification_matches_function_at_all_ones() {
        // For an inverting gate, driving all inputs to 1 yields 0 and
        // vice versa for non-inverting unate gates (spacer propagation).
        for kind in CellKind::ALL {
            if kind.input_count() == 0 || kind.is_sequential() || !kind.is_unate() {
                continue;
            }
            let all_ones = vec![true; kind.input_count()];
            let all_zeros = vec![false; kind.input_count()];
            if kind.is_inverting() {
                assert!(!kind.eval(&all_ones, None), "{kind:?} all-ones");
                assert!(kind.eval(&all_zeros, None), "{kind:?} all-zeros");
            } else {
                assert!(kind.eval(&all_ones, None), "{kind:?} all-ones");
                assert!(!kind.eval(&all_zeros, None), "{kind:?} all-zeros");
            }
        }
    }

    #[test]
    fn tristate_matches_binary_when_fully_defined() {
        for kind in CellKind::ALL {
            let n = kind.input_count();
            for pattern in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
                let opts: Vec<Option<bool>> = bits.iter().map(|&b| Some(b)).collect();
                for prev in [Some(false), Some(true)] {
                    assert_eq!(
                        kind.eval_tristate(&opts, prev),
                        Some(kind.eval(&bits, prev)),
                        "{kind:?} pattern {pattern:b} prev {prev:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tristate_controlling_values() {
        assert_eq!(
            CellKind::And2.eval_tristate(&[Some(false), None], None),
            Some(false)
        );
        assert_eq!(
            CellKind::Or2.eval_tristate(&[None, Some(true)], None),
            Some(true)
        );
        assert_eq!(
            CellKind::And2.eval_tristate(&[Some(true), None], None),
            None
        );
        assert_eq!(
            CellKind::Nand2.eval_tristate(&[Some(false), None], None),
            Some(true)
        );
        assert_eq!(
            CellKind::Xor2.eval_tristate(&[Some(true), None], None),
            None
        );
        assert_eq!(
            CellKind::Aoi21.eval_tristate(&[None, None, Some(true)], None),
            Some(false)
        );
    }

    #[test]
    fn eval_word_matches_scalar_eval_in_every_lane() {
        // For each kind, exercise every input pattern twice (prev = 0 and
        // prev = 1), one lane per (pattern, prev) combination.
        for kind in CellKind::ALL {
            let n = kind.input_count();
            let patterns = 1u32 << n;
            let lanes = (2 * patterns) as usize;
            assert!(lanes <= 64, "{kind:?} does not fit one word");

            let mut input_words = vec![0u64; n];
            let mut prev_word = 0u64;
            let mut expected = 0u64;
            for lane in 0..lanes {
                let pattern = (lane as u32) % patterns;
                let prev = lane as u32 >= patterns;
                let bits: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
                for (i, &bit) in bits.iter().enumerate() {
                    input_words[i] |= u64::from(bit) << lane;
                }
                prev_word |= u64::from(prev) << lane;
                expected |= u64::from(kind.eval(&bits, Some(prev))) << lane;
            }

            let got = kind.eval_word(&input_words, prev_word);
            let mask = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            assert_eq!(
                got & mask,
                expected,
                "{kind:?} word evaluation diverges from scalar"
            );
        }
    }

    #[test]
    fn sequential_kinds() {
        assert!(CellKind::Dff.is_sequential());
        assert!(CellKind::CElement2.is_sequential());
        assert!(CellKind::CElement3.is_sequential());
        assert!(!CellKind::Aoi22.is_sequential());
    }

    #[test]
    fn display_uses_library_name() {
        assert_eq!(CellKind::Aoi32.to_string(), "AOI32");
        assert_eq!(CellKind::CElement2.to_string(), "C2");
    }
}
