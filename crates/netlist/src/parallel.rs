//! Multi-threaded bit-parallel netlist evaluation: many 64-lane word
//! groups sharded across worker threads.
//!
//! [`crate::BatchEvaluator`] evaluates 64 independent samples per pass.
//! For workloads far wider than 64 samples, the passes themselves are
//! embarrassingly parallel — every sequential-state slot is *per lane*,
//! so a chunk of whole 64-lane words carries its own state and never
//! shares anything with another chunk mid-pass.  The
//! [`ParallelBatchEvaluator`] exploits exactly that sharding contract:
//!
//! * the flattened index program is built once and shared read-only by
//!   every worker;
//! * each word group (one set of primary-input words plus its own
//!   [`BatchState`]) is assigned to exactly one worker per call;
//! * workers keep private scratch buffers, so no allocation or state is
//!   shared mid-pass;
//! * results are merged back **in group order**, making the output
//!   bit-identical to evaluating the groups sequentially with one
//!   [`crate::BatchEvaluator`] — at any thread count (property-tested in
//!   `tests/property_tests.rs` at threads 1, 2 and 7).
//!
//! # Example
//!
//! ```
//! use netlist::{CellKind, Netlist, ParallelBatchEvaluator};
//!
//! let mut nl = Netlist::new("and_or");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
//! let y = nl.add_cell("or", CellKind::Or2, &[ab, c]).unwrap();
//! nl.add_output("y", y);
//!
//! let parallel = ParallelBatchEvaluator::new(&nl, 2).unwrap();
//! let groups = vec![vec![0b1100, 0b1010, 0b0001], vec![0b1111, 0b0000, 0b0000]];
//! let mut states = parallel.new_states(groups.len());
//! let outs = parallel.eval_word_groups(&groups, &mut states);
//! assert_eq!(outs, vec![vec![0b1001], vec![0b0000]]);
//! ```

use exec::Executor;

use crate::batch::{BatchEvaluator, BatchState};
use crate::{Netlist, NetlistError};

/// Multi-threaded wrapper around a [`BatchEvaluator`]: shards whole
/// 64-lane word groups across worker threads with deterministic,
/// in-order merging.
#[derive(Debug)]
pub struct ParallelBatchEvaluator<'a> {
    inner: BatchEvaluator<'a>,
    executor: Executor,
}

impl<'a> ParallelBatchEvaluator<'a> {
    /// Flattens `netlist` once and prepares an executor with `threads`
    /// workers (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist has a
    /// combinational cycle.
    pub fn new(netlist: &'a Netlist, threads: usize) -> Result<Self, NetlistError> {
        Ok(Self::from_evaluator(
            BatchEvaluator::new(netlist)?,
            Executor::new(threads),
        ))
    }

    /// Wraps an existing flattened evaluator with an executor.
    #[must_use]
    pub fn from_evaluator(inner: BatchEvaluator<'a>, executor: Executor) -> Self {
        Self { inner, executor }
    }

    /// The single-threaded evaluator the workers share.
    #[must_use]
    pub fn inner(&self) -> &BatchEvaluator<'a> {
        &self.inner
    }

    /// Number of worker threads used per call.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Creates one zeroed sequential state per word group.
    #[must_use]
    pub fn new_states(&self, groups: usize) -> Vec<BatchState> {
        (0..groups).map(|_| self.inner.new_state()).collect()
    }

    /// Evaluates every word group through the netlist in parallel and
    /// returns each group's primary-output words, in group order.
    ///
    /// `word_groups[g]` holds one `u64` per primary input (the same
    /// layout as [`BatchEvaluator::eval_words`]); `states[g]` is that
    /// group's persistent sequential state and is updated in place.
    /// Groups are statically sharded into contiguous ranges, one range
    /// per worker, so each worker owns its states for the whole pass —
    /// no state is shared between threads mid-pass.
    ///
    /// # Panics
    ///
    /// Panics if `word_groups` and `states` have different lengths, if
    /// any group's word count differs from the number of primary inputs,
    /// or if any state was not created for this netlist.
    pub fn eval_word_groups(
        &self,
        word_groups: &[Vec<u64>],
        states: &mut [BatchState],
    ) -> Vec<Vec<u64>> {
        let inner = &self.inner;
        // Each worker keeps one net-value scratch buffer for its whole
        // contiguous range of groups, so steady-state evaluation stays
        // allocation-free beyond the returned output vectors.
        self.executor.zip_shards_with(
            word_groups,
            states,
            Vec::new,
            move |values, _, words, state| inner.eval_words(words, state, values),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    fn chain_netlist() -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_cell("xor", CellKind::Xor2, &[a, b]).unwrap();
        let c = nl.add_cell("cel", CellKind::CElement2, &[x, b]).unwrap();
        nl.add_output("x", x);
        nl.add_output("c", c);
        nl
    }

    #[test]
    fn parallel_groups_match_sequential_groups() {
        let nl = chain_netlist();
        let groups: Vec<Vec<u64>> = (0..13)
            .map(|g| vec![0xDEAD_BEEF_u64.rotate_left(g), 0x0123_4567_89AB_CDEF])
            .collect();

        let reference = BatchEvaluator::new(&nl).unwrap();
        let mut ref_states: Vec<BatchState> =
            (0..groups.len()).map(|_| reference.new_state()).collect();
        let mut values = Vec::new();
        let expected: Vec<Vec<u64>> = groups
            .iter()
            .zip(ref_states.iter_mut())
            .map(|(words, state)| reference.eval_words(words, state, &mut values))
            .collect();

        for threads in [1, 2, 7] {
            let parallel = ParallelBatchEvaluator::new(&nl, threads).unwrap();
            let mut states = parallel.new_states(groups.len());
            let outs = parallel.eval_word_groups(&groups, &mut states);
            assert_eq!(outs, expected, "threads = {threads}");
            assert_eq!(states, ref_states, "threads = {threads} (state diverged)");
        }
    }

    #[test]
    fn sequential_state_is_carried_per_group_across_calls() {
        let nl = chain_netlist();
        let parallel = ParallelBatchEvaluator::new(&nl, 2).unwrap();
        let reference = BatchEvaluator::new(&nl).unwrap();

        let mut states = parallel.new_states(3);
        let mut ref_state = reference.new_state();
        let mut values = Vec::new();

        // Group 1 gets different stimulus each pass; its state must evolve
        // exactly as a lone sequential evaluator would.
        for pass in 0..4u64 {
            let groups = vec![
                vec![0, 0],
                vec![pass.wrapping_mul(0x9E37_79B9_7F4A_7C15), u64::MAX],
                vec![u64::MAX, u64::MAX],
            ];
            let outs = parallel.eval_word_groups(&groups, &mut states);
            let expected = reference.eval_words(&groups[1], &mut ref_state, &mut values);
            assert_eq!(outs[1], expected, "pass {pass}");
        }
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut nl = Netlist::new("cyclic");
        let a = nl.add_input("a");
        let fb = nl.add_net_named("fb").unwrap();
        let x = nl.add_cell("and", CellKind::And2, &[a, fb]).unwrap();
        nl.add_cell_with_output("inv", CellKind::Inv, &[x], fb)
            .unwrap();
        nl.add_output("y", x);
        assert!(ParallelBatchEvaluator::new(&nl, 2).is_err());
    }
}
