//! Structural gate-level netlist intermediate representation.
//!
//! This crate is the foundation substrate of the reproduction of
//! *Low-Latency Asynchronous Logic Design for Inference at the Edge*
//! (Wheeldon et al., DATE 2021).  It models circuits at the same
//! abstraction level a post-synthesis gate-level netlist would have:
//! primitive standard cells (simple gates, complex AOI/OAI gates,
//! C-elements, flip-flops) connected by nets, with named primary inputs
//! and outputs.
//!
//! Everything downstream — the dual-rail expansion, completion-detection
//! insertion, static timing analysis and the event-driven simulator —
//! operates on the [`Netlist`] type defined here.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, CellKind};
//!
//! // Build a tiny AND-OR circuit:  y = (a & b) | c
//! let mut nl = Netlist::new("and_or");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.add_cell("u_and", CellKind::And2, &[a, b]).unwrap();
//! let y = nl.add_cell("u_or", CellKind::Or2, &[ab, c]).unwrap();
//! nl.add_output("y", y);
//!
//! assert_eq!(nl.cell_count(), 2);
//! assert_eq!(nl.primary_inputs().len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cell;
pub mod error;
pub mod eval;
pub mod graph;
pub mod ids;
pub mod netlist;
pub mod parallel;
pub mod stats;

pub use batch::{pack_lanes, unpack_lane, BatchEvaluator, BatchState, LANES};
pub use cell::{Cell, CellKind, Unateness};
pub use error::NetlistError;
pub use eval::{EvalState, Evaluator};
pub use graph::{levelize, topological_order, TopoError};
pub use ids::{CellId, NetId, PortId};
pub use netlist::{Net, NetDriver, Netlist, Port, PortDirection};
pub use parallel::ParallelBatchEvaluator;
pub use stats::{CellHistogram, NetlistStats};
