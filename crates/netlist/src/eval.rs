//! Zero-delay functional evaluation of netlists.
//!
//! The [`Evaluator`] computes steady-state net values for a given primary
//! input assignment, respecting the previous state of sequential cells.
//! It serves as the *golden functional model* against which the
//! event-driven simulator and the dual-rail expansion are checked.
//!
//! The hot path is allocation-free in steady state: callers that evaluate
//! many samples should use [`Evaluator::eval_with_state_into`] with a
//! reused scratch buffer; the convenience wrappers allocate per call.
//! For bulk throughput, the 64-samples-per-word
//! [`crate::BatchEvaluator`] is an order of magnitude faster still.

use std::collections::HashMap;

use crate::graph::topological_order;
use crate::{CellId, CellKind, NetId, Netlist, NetlistError};

/// Persistent state of sequential cells (C-elements, flip-flops) between
/// evaluations.
///
/// Stored densely, indexed by cell id; cells beyond the stored length
/// default to logic 0, so a fresh (empty) state means "all sequential
/// cells at logic 0".
#[derive(Clone, Debug, Default, Eq)]
pub struct EvalState {
    values: Vec<bool>,
}

impl EvalState {
    /// Creates an empty state (all sequential cells at logic 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a state pre-sized for `netlist`, avoiding growth during
    /// evaluation.
    #[must_use]
    pub fn for_netlist(netlist: &Netlist) -> Self {
        Self {
            values: vec![false; netlist.cell_count()],
        }
    }

    /// Returns the stored output value of a sequential cell.
    #[must_use]
    pub fn get(&self, cell: CellId) -> bool {
        self.values.get(cell.index()).copied().unwrap_or(false)
    }

    /// Stores the output value of a sequential cell.
    pub fn set(&mut self, cell: CellId, value: bool) {
        let index = cell.index();
        if index >= self.values.len() {
            if !value {
                return;
            }
            self.values.resize(index + 1, false);
        }
        self.values[index] = value;
    }
}

impl PartialEq for EvalState {
    fn eq(&self, other: &Self) -> bool {
        // Missing trailing entries are implicit zeros, so states of
        // different stored lengths can still be equal.
        let (short, long) = if self.values.len() <= other.values.len() {
            (&self.values, &other.values)
        } else {
            (&other.values, &self.values)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&v| !v)
    }
}

/// Functional evaluator over a [`Netlist`].
///
/// # Example
///
/// ```
/// use netlist::{Netlist, CellKind, Evaluator};
///
/// let mut nl = Netlist::new("mux_ish");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_cell("or", CellKind::Or2, &[a, b]).unwrap();
/// nl.add_output("y", y);
///
/// let eval = Evaluator::new(&nl).unwrap();
/// let outs = eval.eval_named(&[("a", false), ("b", true)]).unwrap();
/// assert_eq!(outs["y"], true);
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    /// Cells of kind [`CellKind::Dff`], in topological order; their
    /// capture step runs after the combinational pass.
    dff_cells: Vec<CellId>,
}

impl<'a> Evaluator<'a> {
    /// Prepares an evaluator (computes a topological order once).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist has a
    /// combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order =
            topological_order(netlist).map_err(|e| NetlistError::CombinationalCycle(e.net))?;
        let dff_cells = order
            .iter()
            .copied()
            .filter(|&id| netlist.cell(id).kind() == CellKind::Dff)
            .collect();
        Ok(Self {
            netlist,
            order,
            dff_cells,
        })
    }

    /// The netlist this evaluator works on.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates the netlist for one input assignment into a
    /// caller-provided net-value buffer, updating `state` for sequential
    /// cells.  `values` is resized to the net count; its previous
    /// contents are irrelevant.
    ///
    /// This is the allocation-free core: with a pre-grown `values`
    /// buffer and a pre-sized [`EvalState`], repeated calls perform no
    /// heap allocation.  Gate inputs are gathered into a fixed-capacity
    /// stack buffer rather than a per-cell `Vec`.
    ///
    /// C-elements are evaluated transparently (they see their new inputs
    /// and their previous output); flip-flops present their *previous*
    /// state and capture their data input at the end of the call,
    /// emulating one clock edge per evaluation.
    pub fn eval_with_state_into(
        &self,
        inputs: &HashMap<NetId, bool>,
        state: &mut EvalState,
        values: &mut Vec<bool>,
    ) {
        values.clear();
        values.resize(self.netlist.net_count(), false);
        for pi in self.netlist.primary_inputs() {
            values[pi.index()] = inputs.get(&pi).copied().unwrap_or(false);
        }

        let mut ins = [false; CellKind::MAX_INPUTS];
        for &cell_id in &self.order {
            let cell = self.netlist.cell(cell_id);
            let input_nets = cell.inputs();
            for (slot, net) in ins.iter_mut().zip(input_nets) {
                *slot = values[net.index()];
            }
            let prev = if cell.kind().is_sequential() {
                Some(state.get(cell_id))
            } else {
                None
            };
            let out = cell.kind().eval(&ins[..input_nets.len()], prev);
            values[cell.output().index()] = out;
            if cell.kind().is_sequential() && cell.kind() != CellKind::Dff {
                state.set(cell_id, out);
            }
        }
        // Capture D (pin 0) at the end of this "cycle".  Topological
        // order guarantees every D driver was evaluated above, so the
        // settled `values` equal what an in-order capture would see.
        for &cell_id in &self.dff_cells {
            let d = values[self.netlist.cell(cell_id).inputs()[0].index()];
            state.set(cell_id, d);
        }
    }

    /// Evaluates the netlist for one input assignment, updating `state`
    /// for sequential cells, and returns the value of every net.
    ///
    /// `inputs` maps primary-input nets to values; any primary input
    /// missing from the map defaults to logic 0.  Allocates the result
    /// vector; see [`Evaluator::eval_with_state_into`] for the reusable
    /// variant.
    #[must_use]
    pub fn eval_with_state(
        &self,
        inputs: &HashMap<NetId, bool>,
        state: &mut EvalState,
    ) -> Vec<bool> {
        let mut values = Vec::new();
        self.eval_with_state_into(inputs, state, &mut values);
        values
    }

    /// Stateless evaluation: all sequential cells start at logic 0.
    #[must_use]
    pub fn eval(&self, inputs: &HashMap<NetId, bool>) -> Vec<bool> {
        let mut state = EvalState::new();
        self.eval_with_state(inputs, &mut state)
    }

    /// Convenience wrapper taking `(port name, value)` pairs and returning
    /// a map from primary-output port names to values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] if a named input port does
    /// not exist.
    pub fn eval_named(
        &self,
        inputs: &[(&str, bool)],
    ) -> Result<HashMap<String, bool>, NetlistError> {
        let mut map = HashMap::new();
        for (name, value) in inputs {
            let net = self
                .netlist
                .find_net(name)
                .ok_or_else(|| NetlistError::UnknownName((*name).to_string()))?;
            map.insert(net, *value);
        }
        let values = self.eval(&map);
        let mut out = HashMap::new();
        for (_, port) in self.netlist.ports() {
            if port.direction() == crate::PortDirection::Output {
                out.insert(port.name().to_string(), values[port.net().index()]);
            }
        }
        Ok(out)
    }

    /// Evaluates only the primary outputs for a vector of primary-input
    /// values given in port declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    #[must_use]
    pub fn eval_vector(&self, input_values: &[bool]) -> Vec<bool> {
        let pis = self.netlist.primary_inputs();
        assert_eq!(
            input_values.len(),
            pis.len(),
            "expected {} input values, got {}",
            pis.len(),
            input_values.len()
        );
        let map: HashMap<NetId, bool> = pis
            .iter()
            .copied()
            .zip(input_values.iter().copied())
            .collect();
        let values = self.eval(&map);
        self.netlist
            .primary_outputs()
            .iter()
            .map(|n| values[n.index()])
            .collect()
    }
}

/// Checks whether a net currently carries the value implied by driving
/// all primary inputs with `spacer_value` — used to verify spacer
/// propagation through unate dual-rail circuits.
#[must_use]
pub fn all_nets_at_spacer(nl: &Netlist, values: &[bool], expected: &HashMap<NetId, bool>) -> bool {
    expected.iter().all(|(net, v)| {
        debug_assert!(net.index() < nl.net_count());
        values[net.index()] == *v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    #[test]
    fn evaluates_combinational_logic() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
        let y = nl.add_cell("or", CellKind::Or2, &[ab, c]).unwrap();
        nl.add_output("y", y);

        let eval = Evaluator::new(&nl).unwrap();
        for (va, vb, vc) in [
            (false, false, false),
            (true, false, false),
            (true, true, false),
            (false, false, true),
        ] {
            let outs = eval.eval_named(&[("a", va), ("b", vb), ("c", vc)]).unwrap();
            assert_eq!(outs["y"], (va && vb) || vc);
        }
    }

    #[test]
    fn eval_vector_matches_truth_table_of_xor() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("xor", CellKind::Xor2, &[a, b]).unwrap();
        nl.add_output("y", y);
        let eval = Evaluator::new(&nl).unwrap();
        assert_eq!(eval.eval_vector(&[false, false]), vec![false]);
        assert_eq!(eval.eval_vector(&[true, false]), vec![true]);
        assert_eq!(eval.eval_vector(&[false, true]), vec![true]);
        assert_eq!(eval.eval_vector(&[true, true]), vec![false]);
    }

    #[test]
    fn c_element_state_persists_across_evaluations() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("c", CellKind::CElement2, &[a, b]).unwrap();
        nl.add_output("y", y);

        let eval = Evaluator::new(&nl).unwrap();
        let mut state = EvalState::new();
        let pis = nl.primary_inputs();

        let v = eval.eval_with_state(&HashMap::from([(pis[0], true), (pis[1], true)]), &mut state);
        assert!(v[y.index()]);
        // Inputs disagree: output holds 1.
        let v = eval.eval_with_state(
            &HashMap::from([(pis[0], true), (pis[1], false)]),
            &mut state,
        );
        assert!(v[y.index()]);
        // Both low: output falls.
        let v = eval.eval_with_state(
            &HashMap::from([(pis[0], false), (pis[1], false)]),
            &mut state,
        );
        assert!(!v[y.index()]);
    }

    #[test]
    fn dff_captures_on_next_evaluation() {
        let mut nl = Netlist::new("reg");
        let d = nl.add_input("d");
        let clk = nl.add_input("clk");
        let q = nl.add_cell("ff", CellKind::Dff, &[d, clk]).unwrap();
        nl.add_output("q", q);

        let eval = Evaluator::new(&nl).unwrap();
        let mut state = EvalState::new();
        let pis = nl.primary_inputs();
        // First cycle: q shows reset value 0, captures d=1.
        let v = eval.eval_with_state(&HashMap::from([(pis[0], true)]), &mut state);
        assert!(!v[q.index()]);
        // Second cycle: q shows the captured 1.
        let v = eval.eval_with_state(&HashMap::from([(pis[0], false)]), &mut state);
        assert!(v[q.index()]);
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("or", CellKind::Or2, &[a, b]).unwrap();
        nl.add_output("y", y);
        let eval = Evaluator::new(&nl).unwrap();
        let outs = eval.eval_named(&[("a", true)]).unwrap();
        assert!(outs["y"]);
        let outs = eval.eval_named(&[]).unwrap();
        assert!(!outs["y"]);
    }

    #[test]
    fn unknown_input_name_is_an_error() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_cell("inv", CellKind::Inv, &[a]).unwrap();
        nl.add_output("y", y);
        let eval = Evaluator::new(&nl).unwrap();
        assert!(eval.eval_named(&[("nope", true)]).is_err());
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut nl = Netlist::new("cyclic");
        let a = nl.add_input("a");
        let fb = nl.add_net_named("fb").unwrap();
        let x = nl.add_cell("and", CellKind::And2, &[a, fb]).unwrap();
        nl.add_cell_with_output("inv", CellKind::Inv, &[x], fb)
            .unwrap();
        nl.add_output("y", x);
        assert!(matches!(
            Evaluator::new(&nl),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn scratch_buffer_reuse_matches_fresh_allocation() {
        // A DFF-and-C-element pipeline exercised twice: once through the
        // allocating wrapper, once through a reused scratch buffer.
        let mut nl = Netlist::new("pipe");
        let d = nl.add_input("d");
        let clk = nl.add_input("clk");
        let q = nl.add_cell("ff", CellKind::Dff, &[d, clk]).unwrap();
        let c = nl.add_cell("c", CellKind::CElement2, &[q, d]).unwrap();
        nl.add_output("c", c);

        let eval = Evaluator::new(&nl).unwrap();
        let stimuli: Vec<HashMap<NetId, bool>> = (0..8)
            .map(|i| HashMap::from([(d, i % 3 == 0), (clk, i % 2 == 0)]))
            .collect();

        let mut fresh_state = EvalState::new();
        let fresh: Vec<Vec<bool>> = stimuli
            .iter()
            .map(|map| eval.eval_with_state(map, &mut fresh_state))
            .collect();

        let mut reused_state = EvalState::for_netlist(&nl);
        let mut scratch = Vec::new();
        for (map, expected) in stimuli.iter().zip(&fresh) {
            eval.eval_with_state_into(map, &mut reused_state, &mut scratch);
            assert_eq!(&scratch, expected);
        }
        assert_eq!(fresh_state, reused_state);
    }

    #[test]
    fn eval_state_equality_ignores_trailing_zeros() {
        let mut sparse = EvalState::new();
        let mut dense = EvalState::new();
        dense.set(CellId::from_index(5), true);
        dense.set(CellId::from_index(5), false);
        assert_eq!(sparse, dense);
        sparse.set(CellId::from_index(2), true);
        assert_ne!(sparse, dense);
        dense.set(CellId::from_index(2), true);
        assert_eq!(sparse, dense);
    }
}
