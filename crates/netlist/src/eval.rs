//! Zero-delay functional evaluation of netlists.
//!
//! The [`Evaluator`] computes steady-state net values for a given primary
//! input assignment, respecting the previous state of sequential cells.
//! It serves as the *golden functional model* against which the
//! event-driven simulator and the dual-rail expansion are checked.

use std::collections::HashMap;

use crate::graph::topological_order;
use crate::{CellId, NetId, Netlist, NetlistError};

/// Persistent state of sequential cells (C-elements, flip-flops) between
/// evaluations.
///
/// Keys are cell ids; missing entries default to logic 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalState {
    values: HashMap<CellId, bool>,
}

impl EvalState {
    /// Creates an empty state (all sequential cells at logic 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the stored output value of a sequential cell.
    #[must_use]
    pub fn get(&self, cell: CellId) -> bool {
        self.values.get(&cell).copied().unwrap_or(false)
    }

    /// Stores the output value of a sequential cell.
    pub fn set(&mut self, cell: CellId, value: bool) {
        self.values.insert(cell, value);
    }
}

/// Functional evaluator over a [`Netlist`].
///
/// # Example
///
/// ```
/// use netlist::{Netlist, CellKind, Evaluator};
///
/// let mut nl = Netlist::new("mux_ish");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_cell("or", CellKind::Or2, &[a, b]).unwrap();
/// nl.add_output("y", y);
///
/// let eval = Evaluator::new(&nl).unwrap();
/// let outs = eval.eval_named(&[("a", false), ("b", true)]).unwrap();
/// assert_eq!(outs["y"], true);
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
}

impl<'a> Evaluator<'a> {
    /// Prepares an evaluator (computes a topological order once).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist has a
    /// combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = topological_order(netlist)
            .map_err(|e| NetlistError::CombinationalCycle(e.net))?;
        Ok(Self { netlist, order })
    }

    /// The netlist this evaluator works on.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates the netlist for one input assignment, updating `state`
    /// for sequential cells, and returns the value of every net.
    ///
    /// `inputs` maps primary-input nets to values; any primary input
    /// missing from the map defaults to logic 0.
    ///
    /// C-elements are evaluated transparently (they see their new inputs
    /// and their previous output); flip-flops present their *previous*
    /// state and capture their data input at the end of the call,
    /// emulating one clock edge per evaluation.
    #[must_use]
    pub fn eval_with_state(
        &self,
        inputs: &HashMap<NetId, bool>,
        state: &mut EvalState,
    ) -> Vec<bool> {
        let mut values = vec![false; self.netlist.net_count()];
        for pi in self.netlist.primary_inputs() {
            values[pi.index()] = inputs.get(&pi).copied().unwrap_or(false);
        }

        let mut dff_captures: Vec<(CellId, bool)> = Vec::new();
        for &cell_id in &self.order {
            let cell = self.netlist.cell(cell_id);
            let ins: Vec<bool> = cell.inputs().iter().map(|n| values[n.index()]).collect();
            let prev = if cell.kind().is_sequential() {
                Some(state.get(cell_id))
            } else {
                None
            };
            let out = cell.kind().eval(&ins, prev);
            values[cell.output().index()] = out;
            if cell.kind().is_sequential() {
                if cell.kind() == crate::CellKind::Dff {
                    // Capture D (pin 0) at the end of this "cycle".
                    dff_captures.push((cell_id, ins[0]));
                } else {
                    state.set(cell_id, out);
                }
            }
        }
        for (cell, d) in dff_captures {
            state.set(cell, d);
        }
        values
    }

    /// Stateless evaluation: all sequential cells start at logic 0.
    #[must_use]
    pub fn eval(&self, inputs: &HashMap<NetId, bool>) -> Vec<bool> {
        let mut state = EvalState::new();
        self.eval_with_state(inputs, &mut state)
    }

    /// Convenience wrapper taking `(port name, value)` pairs and returning
    /// a map from primary-output port names to values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] if a named input port does
    /// not exist.
    pub fn eval_named(
        &self,
        inputs: &[(&str, bool)],
    ) -> Result<HashMap<String, bool>, NetlistError> {
        let mut map = HashMap::new();
        for (name, value) in inputs {
            let net = self
                .netlist
                .find_net(name)
                .ok_or_else(|| NetlistError::UnknownName((*name).to_string()))?;
            map.insert(net, *value);
        }
        let values = self.eval(&map);
        let mut out = HashMap::new();
        for (_, port) in self.netlist.ports() {
            if port.direction() == crate::PortDirection::Output {
                out.insert(port.name().to_string(), values[port.net().index()]);
            }
        }
        Ok(out)
    }

    /// Evaluates only the primary outputs for a vector of primary-input
    /// values given in port declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    #[must_use]
    pub fn eval_vector(&self, input_values: &[bool]) -> Vec<bool> {
        let pis = self.netlist.primary_inputs();
        assert_eq!(
            input_values.len(),
            pis.len(),
            "expected {} input values, got {}",
            pis.len(),
            input_values.len()
        );
        let map: HashMap<NetId, bool> = pis.iter().copied().zip(input_values.iter().copied()).collect();
        let values = self.eval(&map);
        self.netlist
            .primary_outputs()
            .iter()
            .map(|n| values[n.index()])
            .collect()
    }
}

/// Checks whether a net currently carries the value implied by driving
/// all primary inputs with `spacer_value` — used to verify spacer
/// propagation through unate dual-rail circuits.
#[must_use]
pub fn all_nets_at_spacer(nl: &Netlist, values: &[bool], expected: &HashMap<NetId, bool>) -> bool {
    expected.iter().all(|(net, v)| {
        debug_assert!(net.index() < nl.net_count());
        values[net.index()] == *v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    #[test]
    fn evaluates_combinational_logic() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
        let y = nl.add_cell("or", CellKind::Or2, &[ab, c]).unwrap();
        nl.add_output("y", y);

        let eval = Evaluator::new(&nl).unwrap();
        for (va, vb, vc) in [
            (false, false, false),
            (true, false, false),
            (true, true, false),
            (false, false, true),
        ] {
            let outs = eval
                .eval_named(&[("a", va), ("b", vb), ("c", vc)])
                .unwrap();
            assert_eq!(outs["y"], (va && vb) || vc);
        }
    }

    #[test]
    fn eval_vector_matches_truth_table_of_xor() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("xor", CellKind::Xor2, &[a, b]).unwrap();
        nl.add_output("y", y);
        let eval = Evaluator::new(&nl).unwrap();
        assert_eq!(eval.eval_vector(&[false, false]), vec![false]);
        assert_eq!(eval.eval_vector(&[true, false]), vec![true]);
        assert_eq!(eval.eval_vector(&[false, true]), vec![true]);
        assert_eq!(eval.eval_vector(&[true, true]), vec![false]);
    }

    #[test]
    fn c_element_state_persists_across_evaluations() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("c", CellKind::CElement2, &[a, b]).unwrap();
        nl.add_output("y", y);

        let eval = Evaluator::new(&nl).unwrap();
        let mut state = EvalState::new();
        let pis = nl.primary_inputs();

        let v = eval.eval_with_state(
            &HashMap::from([(pis[0], true), (pis[1], true)]),
            &mut state,
        );
        assert!(v[y.index()]);
        // Inputs disagree: output holds 1.
        let v = eval.eval_with_state(
            &HashMap::from([(pis[0], true), (pis[1], false)]),
            &mut state,
        );
        assert!(v[y.index()]);
        // Both low: output falls.
        let v = eval.eval_with_state(
            &HashMap::from([(pis[0], false), (pis[1], false)]),
            &mut state,
        );
        assert!(!v[y.index()]);
    }

    #[test]
    fn dff_captures_on_next_evaluation() {
        let mut nl = Netlist::new("reg");
        let d = nl.add_input("d");
        let clk = nl.add_input("clk");
        let q = nl.add_cell("ff", CellKind::Dff, &[d, clk]).unwrap();
        nl.add_output("q", q);

        let eval = Evaluator::new(&nl).unwrap();
        let mut state = EvalState::new();
        let pis = nl.primary_inputs();
        // First cycle: q shows reset value 0, captures d=1.
        let v = eval.eval_with_state(&HashMap::from([(pis[0], true)]), &mut state);
        assert!(!v[q.index()]);
        // Second cycle: q shows the captured 1.
        let v = eval.eval_with_state(&HashMap::from([(pis[0], false)]), &mut state);
        assert!(v[q.index()]);
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("or", CellKind::Or2, &[a, b]).unwrap();
        nl.add_output("y", y);
        let eval = Evaluator::new(&nl).unwrap();
        let outs = eval.eval_named(&[("a", true)]).unwrap();
        assert!(outs["y"]);
        let outs = eval.eval_named(&[]).unwrap();
        assert!(!outs["y"]);
    }

    #[test]
    fn unknown_input_name_is_an_error() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_cell("inv", CellKind::Inv, &[a]).unwrap();
        nl.add_output("y", y);
        let eval = Evaluator::new(&nl).unwrap();
        assert!(eval.eval_named(&[("nope", true)]).is_err());
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut nl = Netlist::new("cyclic");
        let a = nl.add_input("a");
        let fb = nl.add_net_named("fb").unwrap();
        let x = nl.add_cell("and", CellKind::And2, &[a, fb]).unwrap();
        nl.add_cell_with_output("inv", CellKind::Inv, &[x], fb)
            .unwrap();
        nl.add_output("y", x);
        assert!(matches!(
            Evaluator::new(&nl),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }
}
