//! Word-level bit-parallel netlist evaluation: 64 independent samples per
//! pass.
//!
//! The scalar [`crate::Evaluator`] walks the topologically ordered cell
//! list once per sample.  For bulk inference that wastes almost the whole
//! machine word: every gate evaluation computes one boolean using an
//! instruction that could have computed 64.  The [`BatchEvaluator`] packs
//! 64 independent samples into the bit lanes of a `u64` per net (lane `i`
//! of every word belongs to sample `i`) and evaluates the whole netlist
//! with word-wide boolean instructions via [`crate::CellKind::eval_word`].
//!
//! Two further optimisations over the scalar evaluator:
//!
//! * the netlist is *flattened at construction* into an index program
//!   (cell kind, output slot, input slots in one contiguous array), so
//!   the evaluation loop touches no `Vec<NetId>` indirections and no
//!   hash maps;
//! * all buffers are caller-owned and reused, so steady-state evaluation
//!   performs zero heap allocation.
//!
//! Sequential semantics mirror the scalar evaluator exactly, lane by
//! lane: C-elements are transparent (they see their new inputs and their
//! previous output word), and flip-flops present their *previous* state
//! word and capture their data-input word at the end of the pass — one
//! call is one clock edge for all 64 samples.
//!
//! # Example
//!
//! ```
//! use netlist::{BatchEvaluator, CellKind, Netlist};
//!
//! let mut nl = Netlist::new("and_or");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
//! let y = nl.add_cell("or", CellKind::Or2, &[ab, c]).unwrap();
//! nl.add_output("y", y);
//!
//! let batch = BatchEvaluator::new(&nl).unwrap();
//! let mut state = batch.new_state();
//! let mut values = Vec::new();
//! // Lanes: bit k of each input word is sample k's value of that input.
//! let outs = batch.eval_words(&[0b1100, 0b1010, 0b0001], &mut state, &mut values);
//! assert_eq!(outs, vec![0b1001]); // (a & b) | c per lane
//! ```

use crate::graph::topological_order;
use crate::{CellKind, Netlist, NetlistError};

/// Number of samples evaluated per pass (the lane count of a `u64`).
pub const LANES: usize = 64;

/// One flattened evaluation step: a cell reduced to indices.
#[derive(Clone, Copy, Debug)]
struct BatchOp {
    kind: CellKind,
    /// Index of the output net's word in the value buffer.
    output: u32,
    /// Start of this op's input-net indices in the flat input array.
    input_start: u32,
    /// Number of inputs.
    input_len: u8,
    /// Slot in the sequential-state vector, or `u32::MAX` for
    /// combinational cells.
    state_slot: u32,
}

const NO_STATE: u32 = u32::MAX;

/// Per-lane persistent state of sequential cells between batch passes.
///
/// Create one with [`BatchEvaluator::new_state`]; all lanes start at
/// logic 0, matching a fresh [`crate::EvalState`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchState {
    words: Vec<u64>,
}

impl BatchState {
    /// Resets every sequential cell to logic 0 in every lane.
    pub fn reset(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// Bit-parallel evaluator over a [`Netlist`]: 64 samples per call.
///
/// Construction flattens the netlist once; evaluation then runs the
/// index program with no allocation and no pointer chasing.  Outputs are
/// bit-identical, lane for lane, to 64 scalar [`crate::Evaluator`] calls
/// (property-tested in `tests/property_tests.rs`).
#[derive(Debug)]
pub struct BatchEvaluator<'a> {
    netlist: &'a Netlist,
    ops: Vec<BatchOp>,
    /// Flat input-net index array referenced by [`BatchOp::input_start`].
    inputs_flat: Vec<u32>,
    /// Word indices of primary inputs, in port declaration order.
    pi_slots: Vec<u32>,
    /// Word indices of primary outputs, in port declaration order.
    po_slots: Vec<u32>,
    /// Ops that are flip-flops: (state slot, D-input net index), in
    /// topological order; captured after the combinational pass.
    dff_captures: Vec<(u32, u32)>,
    /// Number of sequential state slots.
    state_len: usize,
}

impl<'a> BatchEvaluator<'a> {
    /// Flattens `netlist` into an index program (topological order is
    /// computed once here).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist has a
    /// combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order =
            topological_order(netlist).map_err(|e| NetlistError::CombinationalCycle(e.net))?;

        let mut ops = Vec::with_capacity(order.len());
        let mut inputs_flat = Vec::new();
        let mut dff_captures = Vec::new();
        let mut state_len = 0usize;

        for cell_id in order {
            let cell = netlist.cell(cell_id);
            let input_start =
                u32::try_from(inputs_flat.len()).expect("netlists stay below 2^32 connections");
            for net in cell.inputs() {
                inputs_flat.push(net.0);
            }
            let state_slot = if cell.kind().is_sequential() {
                let slot = u32::try_from(state_len).expect("cell counts fit in u32");
                state_len += 1;
                slot
            } else {
                NO_STATE
            };
            if cell.kind() == CellKind::Dff {
                dff_captures.push((state_slot, cell.inputs()[0].0));
            }
            ops.push(BatchOp {
                kind: cell.kind(),
                output: cell.output().0,
                input_start,
                input_len: u8::try_from(cell.inputs().len()).expect("cell arity fits in u8"),
                state_slot,
            });
        }

        Ok(Self {
            netlist,
            ops,
            inputs_flat,
            pi_slots: netlist.primary_inputs().iter().map(|n| n.0).collect(),
            po_slots: netlist.primary_outputs().iter().map(|n| n.0).collect(),
            dff_captures,
            state_len,
        })
    }

    /// The netlist this evaluator works on.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Creates a zeroed sequential state sized for this netlist.
    #[must_use]
    pub fn new_state(&self) -> BatchState {
        BatchState {
            words: vec![0; self.state_len],
        }
    }

    /// Evaluates 64 samples through the netlist, writing every net's word
    /// into `values` (resized to the net count) and returning the primary
    /// output words in port declaration order.
    ///
    /// `pi_words` holds one `u64` per primary input, in port declaration
    /// order: bit `k` of `pi_words[i]` is sample `k`'s value of input
    /// `i`.  To evaluate fewer than 64 samples, leave the surplus lanes
    /// at any value and ignore them in the outputs.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` differs from the number of primary
    /// inputs, or if `state` was not created by [`Self::new_state`] for
    /// this netlist (wrong state length).
    pub fn eval_words(
        &self,
        pi_words: &[u64],
        state: &mut BatchState,
        values: &mut Vec<u64>,
    ) -> Vec<u64> {
        self.eval_words_into(pi_words, state, values);
        self.po_slots
            .iter()
            .map(|&slot| values[slot as usize])
            .collect()
    }

    /// Allocation-free core of [`Self::eval_words`]: fills `values` (one
    /// word per net) and updates `state`, without collecting outputs.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::eval_words`].
    pub fn eval_words_into(&self, pi_words: &[u64], state: &mut BatchState, values: &mut Vec<u64>) {
        assert_eq!(
            pi_words.len(),
            self.pi_slots.len(),
            "expected {} primary-input words, got {}",
            self.pi_slots.len(),
            pi_words.len()
        );
        assert_eq!(
            state.words.len(),
            self.state_len,
            "batch state belongs to a different netlist"
        );

        values.clear();
        values.resize(self.netlist.net_count(), 0);
        for (&slot, &word) in self.pi_slots.iter().zip(pi_words) {
            values[slot as usize] = word;
        }

        let mut ins = [0u64; CellKind::MAX_INPUTS];
        for op in &self.ops {
            let start = op.input_start as usize;
            let len = op.input_len as usize;
            for (slot, &net) in ins.iter_mut().zip(&self.inputs_flat[start..start + len]) {
                *slot = values[net as usize];
            }
            let prev = if op.state_slot == NO_STATE {
                0
            } else {
                state.words[op.state_slot as usize]
            };
            let out = op.kind.eval_word(&ins[..len], prev);
            values[op.output as usize] = out;
            if op.state_slot != NO_STATE && op.kind != CellKind::Dff {
                state.words[op.state_slot as usize] = out;
            }
        }
        // Flip-flop capture: one clock edge per pass, for all lanes.
        for &(slot, d_net) in &self.dff_captures {
            state.words[slot as usize] = values[d_net as usize];
        }
    }

    /// Number of primary inputs (the expected `pi_words` length).
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.pi_slots.len()
    }

    /// Number of primary outputs (the length of returned output vectors).
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.po_slots.len()
    }
}

/// Packs up to [`LANES`] boolean samples into per-input lane words.
///
/// `samples[k]` is sample `k`'s primary-input vector; bit `k` of output
/// word `i` is `samples[k][i]`.  Surplus lanes stay 0.  Generic over the
/// sample representation: owned vectors (`&[Vec<bool>]`) and borrowed
/// slices (`&[&[bool]]`, e.g. a micro-batch of requests pointing into a
/// shared workload) pack identically, without cloning.
///
/// # Panics
///
/// Panics if more than [`LANES`] samples are supplied, if `samples` is
/// empty, or if sample widths disagree.
#[must_use]
pub fn pack_lanes<V: AsRef<[bool]>>(samples: &[V]) -> Vec<u64> {
    assert!(!samples.is_empty(), "cannot pack zero samples");
    assert!(
        samples.len() <= LANES,
        "at most {LANES} samples per word, got {}",
        samples.len()
    );
    let width = samples[0].as_ref().len();
    let mut words = vec![0u64; width];
    for (lane, sample) in samples.iter().enumerate() {
        let sample = sample.as_ref();
        assert_eq!(
            sample.len(),
            width,
            "sample {lane} has width {}, expected {width}",
            sample.len()
        );
        for (word, &bit) in words.iter_mut().zip(sample) {
            *word |= u64::from(bit) << lane;
        }
    }
    words
}

/// Extracts one sample's boolean vector from packed lane words (the
/// inverse of [`pack_lanes`] for a single lane).
///
/// # Panics
///
/// Panics if `lane >= LANES`.
#[must_use]
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    assert!(lane < LANES, "lane {lane} out of range");
    words.iter().map(|&w| (w >> lane) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::{EvalState, Evaluator, NetId};

    fn lane_inputs(netlist: &Netlist, words: &[u64], lane: usize) -> HashMap<NetId, bool> {
        netlist
            .primary_inputs()
            .iter()
            .zip(words)
            .map(|(&net, &word)| (net, (word >> lane) & 1 == 1))
            .collect()
    }

    #[test]
    fn combinational_lanes_match_scalar() {
        let mut nl = Netlist::new("aoi");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y = nl.add_cell("aoi", CellKind::Aoi21, &[a, b, c]).unwrap();
        let z = nl.add_cell("inv", CellKind::Inv, &[y]).unwrap();
        nl.add_output("z", z);

        let batch = BatchEvaluator::new(&nl).unwrap();
        let scalar = Evaluator::new(&nl).unwrap();
        // Lanes 0..8 enumerate the full truth table.
        let words = [0x00AA, 0x00CC, 0x00F0];
        let mut state = batch.new_state();
        let mut values = Vec::new();
        let outs = batch.eval_words(&words, &mut state, &mut values);
        for lane in 0..8 {
            let expected = scalar.eval(&lane_inputs(&nl, &words, lane));
            assert_eq!(
                (outs[0] >> lane) & 1 == 1,
                expected[z.index()],
                "lane {lane}"
            );
        }
    }

    #[test]
    fn c_element_state_tracks_scalar_per_lane() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_cell("c", CellKind::CElement2, &[a, b]).unwrap();
        nl.add_output("y", y);

        let batch = BatchEvaluator::new(&nl).unwrap();
        let scalar = Evaluator::new(&nl).unwrap();
        let mut batch_state = batch.new_state();
        let mut scalar_states: Vec<EvalState> = (0..4).map(|_| EvalState::new()).collect();
        let mut values = Vec::new();

        // Three passes with different per-lane stimuli.
        let stimuli = [[0b0011u64, 0b0101], [0b1111, 0b0000], [0b0000, 0b0000]];
        for words in stimuli {
            let outs = batch.eval_words(&words, &mut batch_state, &mut values);
            for (lane, state) in scalar_states.iter_mut().enumerate() {
                let expected = scalar.eval_with_state(&lane_inputs(&nl, &words, lane), state);
                assert_eq!(
                    (outs[0] >> lane) & 1 == 1,
                    expected[y.index()],
                    "lane {lane} diverged"
                );
            }
        }
    }

    #[test]
    fn dff_captures_once_per_pass_in_every_lane() {
        let mut nl = Netlist::new("reg");
        let d = nl.add_input("d");
        let clk = nl.add_input("clk");
        let q = nl.add_cell("ff", CellKind::Dff, &[d, clk]).unwrap();
        nl.add_output("q", q);

        let batch = BatchEvaluator::new(&nl).unwrap();
        let mut state = batch.new_state();
        let mut values = Vec::new();
        // Pass 1: q shows reset 0 in all lanes, captures d.
        let outs = batch.eval_words(&[0b10, 0], &mut state, &mut values);
        assert_eq!(outs[0] & 0b11, 0b00);
        // Pass 2: q shows the captured word.
        let outs = batch.eval_words(&[0b00, 0], &mut state, &mut values);
        assert_eq!(outs[0] & 0b11, 0b10);
    }

    #[test]
    fn pack_and_unpack_round_trip() {
        let samples: Vec<Vec<bool>> = (0..5)
            .map(|k| (0..3).map(|i| (k + i) % 2 == 0).collect())
            .collect();
        let words = pack_lanes(&samples);
        assert_eq!(words.len(), 3);
        for (lane, sample) in samples.iter().enumerate() {
            assert_eq!(&unpack_lane(&words, lane), sample);
        }
    }

    #[test]
    fn wrong_input_width_panics() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_cell("inv", CellKind::Inv, &[a]).unwrap();
        nl.add_output("y", y);
        let batch = BatchEvaluator::new(&nl).unwrap();
        let mut state = batch.new_state();
        let mut values = Vec::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.eval_words(&[0, 0], &mut state, &mut values)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut nl = Netlist::new("cyclic");
        let a = nl.add_input("a");
        let fb = nl.add_net_named("fb").unwrap();
        let x = nl.add_cell("and", CellKind::And2, &[a, fb]).unwrap();
        nl.add_cell_with_output("inv", CellKind::Inv, &[x], fb)
            .unwrap();
        nl.add_output("y", x);
        assert!(matches!(
            BatchEvaluator::new(&nl),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }
}
