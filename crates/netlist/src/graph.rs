//! Graph algorithms over netlists: topological ordering, levelization and
//! cone extraction.
//!
//! Sequential cells (C-elements, flip-flops) are treated as *cut points*
//! in the combinational graph when requested, which lets the same
//! algorithms serve both static timing analysis (which stops at
//! registers) and whole-netlist evaluation order (where C-elements are
//! evaluated in place, relying on their previous state).

use std::collections::VecDeque;

use crate::netlist::NetDriver;
use crate::{CellId, NetId, Netlist};

/// Error returned when the netlist contains a combinational cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoError {
    /// A net participating in the cycle.
    pub net: NetId,
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "combinational cycle detected through net {}", self.net)
    }
}

impl std::error::Error for TopoError {}

/// Returns all cells in a topological order (every cell appears after the
/// drivers of its inputs).
///
/// C-elements participate in the ordering like combinational cells; in
/// the circuits generated in this workspace they never appear in feedback
/// loops at the netlist level (their memory is internal).
///
/// # Errors
///
/// Returns [`TopoError`] if a combinational cycle exists.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, CellKind, topological_order};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let x = nl.add_cell("inv1", CellKind::Inv, &[a]).unwrap();
/// let y = nl.add_cell("inv2", CellKind::Inv, &[x]).unwrap();
/// nl.add_output("y", y);
/// let order = topological_order(&nl).unwrap();
/// assert_eq!(order.len(), 2);
/// assert_eq!(nl.cell(order[0]).name(), "inv1");
/// ```
pub fn topological_order(nl: &Netlist) -> Result<Vec<CellId>, TopoError> {
    // Kahn's algorithm over the cell graph.
    // Indegree of a cell = number of its inputs driven by other cells.
    let n = nl.cell_count();
    let mut indegree = vec![0usize; n];
    for (id, cell) in nl.cells() {
        let deg = cell
            .inputs()
            .iter()
            .filter(|&&i| matches!(nl.net(i).driver(), NetDriver::Cell(_)))
            .count();
        indegree[id.index()] = deg;
    }

    let mut queue: VecDeque<CellId> = nl
        .cells()
        .filter(|(id, _)| indegree[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut order = Vec::with_capacity(n);

    while let Some(cell) = queue.pop_front() {
        order.push(cell);
        let out = nl.cell(cell).output();
        for &(load, _pin) in nl.net(out).loads() {
            indegree[load.index()] -= 1;
            if indegree[load.index()] == 0 {
                queue.push_back(load);
            }
        }
    }

    if order.len() != n {
        // Find a cell still having nonzero indegree to report.
        let offender = nl
            .cells()
            .find(|(id, _)| indegree[id.index()] > 0)
            .map(|(_, c)| c.output())
            .unwrap_or_else(|| NetId::from_index(0));
        return Err(TopoError { net: offender });
    }
    Ok(order)
}

/// Assigns a logic level to every cell: primary-input-driven cells are
/// level 1, and every other cell is one more than the maximum level of
/// its driving cells.  Returns `None` on a combinational cycle.
///
/// The maximum level is a proxy for logic depth used by quick-look
/// reports; precise delays come from the `sta` crate.
#[must_use]
pub fn levelize(nl: &Netlist) -> Option<Vec<usize>> {
    let order = topological_order(nl).ok()?;
    let mut levels = vec![0usize; nl.cell_count()];
    for cell in order {
        let mut level = 1;
        for &input in nl.cell(cell).inputs() {
            if let NetDriver::Cell(driver) = nl.net(input).driver() {
                level = level.max(levels[driver.index()] + 1);
            }
        }
        levels[cell.index()] = level;
    }
    Some(levels)
}

/// Returns every cell in the transitive fan-in cone of `net` (the cells
/// whose output can influence it), including its own driver.
#[must_use]
pub fn fanin_cone(nl: &Netlist, net: NetId) -> Vec<CellId> {
    let mut visited = vec![false; nl.cell_count()];
    let mut stack = vec![net];
    let mut cone = Vec::new();
    while let Some(current) = stack.pop() {
        if let NetDriver::Cell(cell) = nl.net(current).driver() {
            if !visited[cell.index()] {
                visited[cell.index()] = true;
                cone.push(cell);
                for &input in nl.cell(cell).inputs() {
                    stack.push(input);
                }
            }
        }
    }
    cone
}

/// Returns every cell in the transitive fan-out cone of `net` (the cells
/// whose inputs can be influenced by it).
#[must_use]
pub fn fanout_cone(nl: &Netlist, net: NetId) -> Vec<CellId> {
    let mut visited = vec![false; nl.cell_count()];
    let mut stack = vec![net];
    let mut cone = Vec::new();
    while let Some(current) = stack.pop() {
        for &(cell, _pin) in nl.net(current).loads() {
            if !visited[cell.index()] {
                visited[cell.index()] = true;
                cone.push(cell);
                stack.push(nl.cell(cell).output());
            }
        }
    }
    cone
}

/// Maximum logic depth (in cells) from any primary input to any primary
/// output.  Returns 0 for an empty netlist.
#[must_use]
pub fn logic_depth(nl: &Netlist) -> usize {
    levelize(nl).map_or(0, |levels| levels.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut net = nl.add_input("a");
        for i in 0..n {
            net = nl
                .add_cell(format!("inv{i}"), CellKind::Inv, &[net])
                .unwrap();
        }
        nl.add_output("y", net);
        nl
    }

    #[test]
    fn topological_order_of_chain_is_in_sequence() {
        let nl = chain(5);
        let order = topological_order(&nl).unwrap();
        assert_eq!(order.len(), 5);
        for (i, cell) in order.iter().enumerate() {
            assert_eq!(nl.cell(*cell).name(), format!("inv{i}"));
        }
    }

    #[test]
    fn levelize_chain() {
        let nl = chain(4);
        let levels = levelize(&nl).unwrap();
        assert_eq!(levels, vec![1, 2, 3, 4]);
        assert_eq!(logic_depth(&nl), 4);
    }

    #[test]
    fn diamond_topology_orders_correctly() {
        let mut nl = Netlist::new("diamond");
        let a = nl.add_input("a");
        let l = nl.add_cell("l", CellKind::Inv, &[a]).unwrap();
        let r = nl.add_cell("r", CellKind::Buf, &[a]).unwrap();
        let y = nl.add_cell("top", CellKind::And2, &[l, r]).unwrap();
        nl.add_output("y", y);
        let order = topological_order(&nl).unwrap();
        let pos = |name: &str| {
            order
                .iter()
                .position(|&c| nl.cell(c).name() == name)
                .unwrap()
        };
        assert!(pos("l") < pos("top"));
        assert!(pos("r") < pos("top"));
        assert_eq!(logic_depth(&nl), 2);
    }

    #[test]
    fn cycle_is_detected() {
        let mut nl = Netlist::new("cyclic");
        let a = nl.add_input("a");
        let fb = nl.add_net_named("fb").unwrap();
        let x = nl.add_cell("and", CellKind::And2, &[a, fb]).unwrap();
        nl.add_cell_with_output("inv", CellKind::Inv, &[x], fb)
            .unwrap();
        nl.add_output("y", x);
        assert!(topological_order(&nl).is_err());
        assert!(levelize(&nl).is_none());
    }

    #[test]
    fn fanin_cone_covers_transitive_drivers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_cell("x", CellKind::And2, &[a, b]).unwrap();
        let y = nl.add_cell("y", CellKind::Inv, &[x]).unwrap();
        let _unrelated = nl.add_cell("z", CellKind::Inv, &[a]).unwrap();
        nl.add_output("out", y);
        let cone = fanin_cone(&nl, y);
        let names: Vec<&str> = cone.iter().map(|&c| nl.cell(c).name()).collect();
        assert!(names.contains(&"x"));
        assert!(names.contains(&"y"));
        assert!(!names.contains(&"z"));
    }

    #[test]
    fn fanout_cone_covers_transitive_loads() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.add_cell("x", CellKind::Inv, &[a]).unwrap();
        let y = nl.add_cell("y", CellKind::Inv, &[x]).unwrap();
        let b = nl.add_input("b");
        let _other = nl.add_cell("w", CellKind::Inv, &[b]).unwrap();
        nl.add_output("out", y);
        let cone = fanout_cone(&nl, a);
        let names: Vec<&str> = cone.iter().map(|&c| nl.cell(c).name()).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"x"));
        assert!(names.contains(&"y"));
    }

    #[test]
    fn empty_netlist_has_zero_depth() {
        let nl = Netlist::new("empty");
        assert_eq!(logic_depth(&nl), 0);
        assert!(topological_order(&nl).unwrap().is_empty());
    }
}
