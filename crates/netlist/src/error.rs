//! Error types for netlist construction and validation.

use std::error::Error;
use std::fmt;

use crate::{CellId, CellKind, NetId};

/// Errors produced while building or validating a [`crate::Netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell was created with the wrong number of input nets.
    ArityMismatch {
        /// The cell kind being instantiated.
        kind: CellKind,
        /// Number of inputs the kind requires.
        expected: usize,
        /// Number of inputs supplied.
        got: usize,
    },
    /// A net id referenced a net that does not exist in this netlist.
    UnknownNet(NetId),
    /// A name lookup (port or net) failed.
    UnknownName(String),
    /// A cell id referenced a cell that does not exist in this netlist.
    UnknownCell(CellId),
    /// Two drivers were connected to the same net.
    MultipleDrivers {
        /// The net with more than one driver.
        net: NetId,
    },
    /// A port or net name was used twice.
    DuplicateName(String),
    /// The netlist contains a combinational cycle through the listed net.
    CombinationalCycle(NetId),
    /// A primary output references a net with no driver and which is not
    /// a primary input.
    UndrivenOutput(NetId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                kind,
                expected,
                got,
            } => write!(
                f,
                "cell kind {kind} expects {expected} inputs but {got} were supplied"
            ),
            NetlistError::UnknownNet(n) => write!(f, "net {n} does not exist in this netlist"),
            NetlistError::UnknownName(name) => {
                write!(f, "no net or port named {name:?} exists in this netlist")
            }
            NetlistError::UnknownCell(c) => write!(f, "cell {c} does not exist in this netlist"),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net {net} already has a driver")
            }
            NetlistError::DuplicateName(name) => write!(f, "name {name:?} is already in use"),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle detected through net {n}")
            }
            NetlistError::UndrivenOutput(n) => {
                write!(f, "primary output net {n} has no driver")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = NetlistError::ArityMismatch {
            kind: CellKind::And2,
            expected: 2,
            got: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("AND2"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        let err = NetlistError::UnknownNet(NetId::from_index(9));
        assert!(err.to_string().contains("n9"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
