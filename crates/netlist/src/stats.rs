//! Library-independent netlist statistics: cell histograms, pin counts
//! and sequential/combinational breakdown.
//!
//! Area and power figures require a cell library and live in the
//! `celllib` crate; the statistics here are purely structural and are
//! used in reports and tests (e.g. "the dual-rail design has roughly
//! twice the cell count but similar area").

use std::collections::BTreeMap;
use std::fmt;

use crate::{CellKind, Netlist};

/// Histogram of cell kinds used by a netlist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellHistogram {
    counts: BTreeMap<&'static str, usize>,
}

impl CellHistogram {
    /// Number of cells of the given kind.
    #[must_use]
    pub fn count(&self, kind: CellKind) -> usize {
        self.counts.get(kind.library_name()).copied().unwrap_or(0)
    }

    /// Iterates over `(library name, count)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Total number of cells.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

impl fmt::Display for CellHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, count) in &self.counts {
            writeln!(f, "{name:>8}: {count}")?;
        }
        Ok(())
    }
}

/// Structural summary of a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total number of cell instances.
    pub cell_count: usize,
    /// Number of state-holding cells (C-elements and flip-flops).
    pub sequential_count: usize,
    /// Number of combinational cells.
    pub combinational_count: usize,
    /// Number of nets.
    pub net_count: usize,
    /// Number of primary inputs.
    pub input_count: usize,
    /// Number of primary outputs.
    pub output_count: usize,
    /// Total number of cell input pins (a proxy for wiring complexity).
    pub pin_count: usize,
    /// Maximum logic depth in cells.
    pub logic_depth: usize,
    /// Per-kind histogram.
    pub histogram: CellHistogram,
}

impl NetlistStats {
    /// Computes the statistics of a netlist.
    ///
    /// # Example
    ///
    /// ```
    /// use netlist::{Netlist, CellKind, NetlistStats};
    /// let mut nl = Netlist::new("t");
    /// let a = nl.add_input("a");
    /// let b = nl.add_input("b");
    /// let y = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
    /// nl.add_output("y", y);
    /// let stats = NetlistStats::of(&nl);
    /// assert_eq!(stats.cell_count, 1);
    /// assert_eq!(stats.pin_count, 2);
    /// ```
    #[must_use]
    pub fn of(nl: &Netlist) -> Self {
        let mut histogram = CellHistogram::default();
        let mut sequential = 0;
        let mut pins = 0;
        for (_, cell) in nl.cells() {
            *histogram
                .counts
                .entry(cell.kind().library_name())
                .or_insert(0) += 1;
            if cell.kind().is_sequential() {
                sequential += 1;
            }
            pins += cell.inputs().len();
        }
        let cell_count = nl.cell_count();
        Self {
            cell_count,
            sequential_count: sequential,
            combinational_count: cell_count - sequential,
            net_count: nl.net_count(),
            input_count: nl.primary_inputs().len(),
            output_count: nl.primary_outputs().len(),
            pin_count: pins,
            logic_depth: crate::graph::logic_depth(nl),
            histogram,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells: {} ({} sequential, {} combinational)",
            self.cell_count, self.sequential_count, self.combinational_count
        )?;
        writeln!(f, "nets: {}  pins: {}", self.net_count, self.pin_count)?;
        writeln!(
            f,
            "ports: {} in / {} out  depth: {}",
            self.input_count, self.output_count, self.logic_depth
        )?;
        write!(f, "{}", self.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("sample");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let clk = nl.add_input("clk");
        let x = nl.add_cell("and", CellKind::And2, &[a, b]).unwrap();
        let y = nl.add_cell("inv", CellKind::Inv, &[x]).unwrap();
        let q = nl.add_cell("ff", CellKind::Dff, &[y, clk]).unwrap();
        nl.add_output("q", q);
        nl
    }

    #[test]
    fn stats_counts() {
        let stats = NetlistStats::of(&sample());
        assert_eq!(stats.cell_count, 3);
        assert_eq!(stats.sequential_count, 1);
        assert_eq!(stats.combinational_count, 2);
        assert_eq!(stats.input_count, 3);
        assert_eq!(stats.output_count, 1);
        assert_eq!(stats.pin_count, 2 + 1 + 2);
        assert_eq!(stats.logic_depth, 3);
    }

    #[test]
    fn histogram_reports_each_kind() {
        let stats = NetlistStats::of(&sample());
        assert_eq!(stats.histogram.count(CellKind::And2), 1);
        assert_eq!(stats.histogram.count(CellKind::Inv), 1);
        assert_eq!(stats.histogram.count(CellKind::Dff), 1);
        assert_eq!(stats.histogram.count(CellKind::Nor4), 0);
        assert_eq!(stats.histogram.total(), 3);
    }

    #[test]
    fn display_is_nonempty() {
        let stats = NetlistStats::of(&sample());
        let text = stats.to_string();
        assert!(text.contains("cells: 3"));
        assert!(text.contains("DFF"));
    }

    #[test]
    fn empty_netlist_stats() {
        let stats = NetlistStats::of(&Netlist::new("empty"));
        assert_eq!(stats.cell_count, 0);
        assert_eq!(stats.histogram.total(), 0);
        assert_eq!(stats.logic_depth, 0);
    }
}
