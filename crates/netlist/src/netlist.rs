//! The [`Netlist`] container: nets, cells, primary ports and the
//! builder API used by all circuit generators in this workspace.

use std::collections::HashMap;

use crate::{Cell, CellId, CellKind, NetId, NetlistError, PortId};

/// Direction of a primary port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Driven by the environment.
    Input,
    /// Observed by the environment.
    Output,
}

/// A named primary port bound to a net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    name: String,
    direction: PortDirection,
    net: NetId,
}

impl Port {
    /// Port name as seen by the environment.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is an input or output port.
    #[must_use]
    pub fn direction(&self) -> PortDirection {
        self.direction
    }

    /// The net this port is bound to.
    #[must_use]
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// What drives a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetDriver {
    /// The net is a primary input, driven by the environment.
    PrimaryInput,
    /// The net is the output of a cell.
    Cell(CellId),
    /// Nothing drives the net yet.
    None,
}

/// A wire connecting one driver to any number of cell input pins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    name: String,
    driver: NetDriver,
    /// Cells that read this net, with the pin index they read it on.
    loads: Vec<(CellId, usize)>,
}

impl Net {
    /// Net name (unique within the netlist).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What drives this net.
    #[must_use]
    pub fn driver(&self) -> NetDriver {
        self.driver
    }

    /// The `(cell, pin)` pairs reading this net.
    #[must_use]
    pub fn loads(&self) -> &[(CellId, usize)] {
        &self.loads
    }

    /// Number of cell input pins connected to this net.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.loads.len()
    }
}

/// A flat, single-output-per-cell structural netlist.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    ports: Vec<Port>,
    net_names: HashMap<String, NetId>,
    cell_names: HashMap<String, CellId>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Module name of the netlist.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells instantiated.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets (including primary inputs).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds an internal net with an automatically generated unique name.
    pub fn add_net_auto(&mut self) -> NetId {
        let name = format!("_n{}", self.nets.len());
        self.add_net_named(name)
            .expect("auto-generated net names never collide")
    }

    /// Adds an internal (yet undriven) net with an explicit name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_net_named(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NetId(self.nets.len() as u32);
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: NetDriver::None,
            loads: Vec::new(),
        });
        Ok(id)
    }

    /// Adds a primary input port and returns the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use (primary ports are created by
    /// generators from trusted, unique names).
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let net = self
            .add_net_named(name.clone())
            .expect("primary input name already in use");
        self.nets[net.index()].driver = NetDriver::PrimaryInput;
        self.ports.push(Port {
            name,
            direction: PortDirection::Input,
            net,
        });
        net
    }

    /// Marks an existing net as a primary output with the given port name.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> PortId {
        assert!(net.index() < self.nets.len(), "unknown net {net}");
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.into(),
            direction: PortDirection::Output,
            net,
        });
        id
    }

    /// Instantiates a cell driving a fresh automatically named net and
    /// returns that output net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the number of inputs does
    /// not match the kind, or [`NetlistError::UnknownNet`] if an input id is
    /// out of range.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let out = self.add_net_auto();
        self.add_cell_with_output(name, kind, inputs, out)?;
        Ok(out)
    }

    /// Instantiates a cell driving an existing (undriven) net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] for a wrong input count,
    /// [`NetlistError::UnknownNet`] for out-of-range nets,
    /// [`NetlistError::MultipleDrivers`] if the output net is already
    /// driven and [`NetlistError::DuplicateName`] if the instance name is
    /// taken.
    pub fn add_cell_with_output(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        let name = name.into();
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::ArityMismatch {
                kind,
                expected: kind.input_count(),
                got: inputs.len(),
            });
        }
        for &input in inputs {
            if input.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(input));
            }
        }
        if output.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet(output));
        }
        if self.nets[output.index()].driver != NetDriver::None {
            return Err(NetlistError::MultipleDrivers { net: output });
        }
        if self.cell_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }

        let id = CellId(self.cells.len() as u32);
        for (pin, &input) in inputs.iter().enumerate() {
            self.nets[input.index()].loads.push((id, pin));
        }
        self.nets[output.index()].driver = NetDriver::Cell(id);
        self.cell_names.insert(name.clone(), id);
        self.cells.push(Cell {
            name,
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        Ok(id)
    }

    /// Builds a balanced tree of 2/3/4-input gates computing the AND of
    /// `inputs` (or OR, etc. depending on `kind2`..`kind4`) and returns the
    /// root net.  Used by datapath generators for wide clause AND trees.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; returns the single input unchanged
    /// when `inputs.len() == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn add_gate_tree(
        &mut self,
        prefix: &str,
        kinds: (CellKind, CellKind, CellKind),
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        assert!(!inputs.is_empty(), "gate tree needs at least one input");
        let (kind2, kind3, kind4) = kinds;
        let mut level: Vec<NetId> = inputs.to_vec();
        let mut stage = 0usize;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(4));
            let mut iter = level.chunks(4).enumerate();
            for (i, chunk) in &mut iter {
                let name = format!("{prefix}_s{stage}_{i}");
                let net = match chunk.len() {
                    1 => chunk[0],
                    2 => self.add_cell(name, kind2, chunk)?,
                    3 => self.add_cell(name, kind3, chunk)?,
                    4 => self.add_cell(name, kind4, chunk)?,
                    _ => unreachable!("chunks(4) yields at most 4 elements"),
                };
                next.push(net);
            }
            level = next;
            stage += 1;
        }
        Ok(level[0])
    }

    /// Convenience wrapper building an AND tree.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Netlist::add_gate_tree`].
    pub fn add_and_tree(&mut self, prefix: &str, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        self.add_gate_tree(
            prefix,
            (CellKind::And2, CellKind::And3, CellKind::And4),
            inputs,
        )
    }

    /// Convenience wrapper building an OR tree.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Netlist::add_gate_tree`].
    pub fn add_or_tree(&mut self, prefix: &str, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        self.add_gate_tree(
            prefix,
            (CellKind::Or2, CellKind::Or3, CellKind::Or4),
            inputs,
        )
    }

    /// Builds a tree of C-elements combining all `inputs` into a single
    /// completion signal.  Used by completion-detection insertion.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn add_c_element_tree(
        &mut self,
        prefix: &str,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        assert!(
            !inputs.is_empty(),
            "c-element tree needs at least one input"
        );
        let mut level: Vec<NetId> = inputs.to_vec();
        let mut stage = 0usize;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(3));
            for (i, chunk) in level.chunks(3).enumerate() {
                let name = format!("{prefix}_c{stage}_{i}");
                let net = match chunk.len() {
                    1 => chunk[0],
                    2 => self.add_cell(name, CellKind::CElement2, chunk)?,
                    3 => self.add_cell(name, CellKind::CElement3, chunk)?,
                    _ => unreachable!("chunks(3) yields at most 3 elements"),
                };
                next.push(net);
            }
            level = next;
            stage += 1;
        }
        Ok(level[0])
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Returns the net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Returns the cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Returns the port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Iterates over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Iterates over all ports with their ids.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId(i as u32), p))
    }

    /// All primary input nets, in declaration order.
    #[must_use]
    pub fn primary_inputs(&self) -> Vec<NetId> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Input)
            .map(|p| p.net)
            .collect()
    }

    /// All primary output nets, in declaration order.
    #[must_use]
    pub fn primary_outputs(&self) -> Vec<NetId> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Output)
            .map(|p| p.net)
            .collect()
    }

    /// Looks up a net by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Looks up a cell by instance name.
    #[must_use]
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Returns the cell driving `net`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn driver_cell(&self, net: NetId) -> Option<CellId> {
        match self.nets[net.index()].driver {
            NetDriver::Cell(c) => Some(c),
            _ => None,
        }
    }

    /// Returns the first port bound to `net`, if any.
    #[must_use]
    pub fn port_of_net(&self, net: NetId) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.net == net)
            .map(|i| PortId(i as u32))
    }

    /// Whether `net` is a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn is_primary_input(&self, net: NetId) -> bool {
        self.nets[net.index()].driver == NetDriver::PrimaryInput
    }

    /// Validates structural invariants: every primary output and every
    /// cell input must be driven (by a cell or a primary input).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenOutput`] naming the first offending
    /// net.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for po in self.primary_outputs() {
            if self.nets[po.index()].driver == NetDriver::None {
                return Err(NetlistError::UndrivenOutput(po));
            }
        }
        for cell in &self.cells {
            for &input in &cell.inputs {
                if self.nets[input.index()].driver == NetDriver::None {
                    return Err(NetlistError::UndrivenOutput(input));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_and_or() -> (Netlist, NetId, NetId, NetId, NetId) {
        let mut nl = Netlist::new("and_or");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_cell("u_and", CellKind::And2, &[a, b]).unwrap();
        let y = nl.add_cell("u_or", CellKind::Or2, &[ab, c]).unwrap();
        nl.add_output("y", y);
        (nl, a, b, c, y)
    }

    #[test]
    fn build_and_query() {
        let (nl, a, _b, _c, y) = build_and_or();
        assert_eq!(nl.cell_count(), 2);
        assert_eq!(nl.primary_inputs().len(), 3);
        assert_eq!(nl.primary_outputs(), vec![y]);
        assert!(nl.is_primary_input(a));
        assert!(!nl.is_primary_input(y));
        assert_eq!(nl.net(a).fanout(), 1);
        let and_cell = nl.find_cell("u_and").unwrap();
        assert_eq!(nl.cell(and_cell).kind(), CellKind::And2);
        assert_eq!(nl.driver_cell(y), Some(nl.find_cell("u_or").unwrap()));
        nl.validate().unwrap();
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let err = nl.add_cell("bad", CellKind::And2, &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn duplicate_cell_name_is_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.add_cell("inv", CellKind::Inv, &[a]).unwrap();
        let err = nl.add_cell("inv", CellKind::Inv, &[a]).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("inv".to_string()));
    }

    #[test]
    fn duplicate_net_name_is_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_net_named("x").unwrap();
        assert!(matches!(
            nl.add_net_named("x"),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn multiple_drivers_are_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let out = nl.add_net_named("out").unwrap();
        nl.add_cell_with_output("inv1", CellKind::Inv, &[a], out)
            .unwrap();
        let err = nl
            .add_cell_with_output("inv2", CellKind::Inv, &[a], out)
            .unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn undriven_output_fails_validation() {
        let mut nl = Netlist::new("t");
        let dangling = nl.add_net_named("dangling").unwrap();
        nl.add_output("y", dangling);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::UndrivenOutput(_))
        ));
    }

    #[test]
    fn and_tree_collapses_single_input() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let root = nl.add_and_tree("tree", &[a]).unwrap();
        assert_eq!(root, a);
        assert_eq!(nl.cell_count(), 0);
    }

    #[test]
    fn and_tree_width_nine_uses_expected_levels() {
        let mut nl = Netlist::new("t");
        let inputs: Vec<NetId> = (0..9).map(|i| nl.add_input(format!("i{i}"))).collect();
        let root = nl.add_and_tree("tree", &inputs).unwrap();
        nl.add_output("y", root);
        // 9 inputs -> 2x AND4 + 1 pass-through, then AND3 at the top.
        assert_eq!(nl.cell_count(), 3);
        nl.validate().unwrap();
    }

    #[test]
    fn c_element_tree_reduces_to_one_net() {
        let mut nl = Netlist::new("t");
        let inputs: Vec<NetId> = (0..7).map(|i| nl.add_input(format!("i{i}"))).collect();
        let done = nl.add_c_element_tree("cd", &inputs).unwrap();
        nl.add_output("done", done);
        nl.validate().unwrap();
        // All cells must be C-elements.
        assert!(nl
            .cells()
            .all(|(_, c)| matches!(c.kind(), CellKind::CElement2 | CellKind::CElement3)));
    }

    #[test]
    fn fanout_tracks_loads() {
        let (nl, a, _, _, _) = build_and_or();
        let loads = nl.net(a).loads();
        assert_eq!(loads.len(), 1);
        let (cell, pin) = loads[0];
        assert_eq!(nl.cell(cell).name(), "u_and");
        assert_eq!(pin, 0);
    }

    #[test]
    fn find_net_by_name() {
        let (nl, a, _, _, _) = build_and_or();
        assert_eq!(nl.find_net("a"), Some(a));
        assert_eq!(nl.find_net("zzz"), None);
    }
}
