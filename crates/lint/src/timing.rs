//! Timing/hazard family (`T201`–`T203`): the static facts behind the
//! wavefront-pipelining bounds.  Monotonic switching needs unate cells
//! (`T201`) joined consistently (`T202`); the pipelined drivers' static
//! separation interval needs outputs that actually transition and a
//! sane margin (`T203`).

use celllib::Library;
use dualrail::unate::check_unate;
use dualrail::DualRailNetlist;
use netlist::{CellKind, NetDriver, Netlist, Unateness};
use sta::ArrivalAnalysis;

use crate::analyze::Context;
use crate::report::{DiagCode, LintReport, Severity};
use crate::LintConfig;

pub(crate) fn run(
    dr: &DualRailNetlist,
    library: &Library,
    config: &LintConfig,
    ctx: &Context,
    report: &mut LintReport,
) {
    report.codes_checked.extend([
        DiagCode::NonUnateCell,
        DiagCode::DirectionConflict,
        DiagCode::SeparationHazard,
    ]);
    non_unate(dr.netlist(), report);
    direction_conflicts(dr.netlist(), ctx, report);
    separation(dr, library, config, ctx, report);
}

fn non_unate(nl: &Netlist, report: &mut LintReport) {
    if let Err(violations) = check_unate(nl) {
        for v in violations {
            report.push(
                DiagCode::NonUnateCell,
                Severity::Error,
                format!(
                    "cell {:?} ({}) is not unate: monotonic spacer→valid switching \
                     (Requirement 2) does not hold through it",
                    v.cell_name, v.kind,
                ),
                vec![],
                vec![v.cell],
            );
        }
    }
}

/// A net whose spacer level is 0 can only rise during spacer→valid; one
/// at 1 can only fall.  Through a positive-unate pin the output moves
/// with the input, through a negative-unate pin against it.  If two
/// pins of one cell imply *opposite* output movements, the output can
/// glitch mid-phase — exactly the hazard the wavefront bounds assume
/// away.  Structurally constant nets never move and are skipped.
fn direction_conflicts(nl: &Netlist, ctx: &Context, report: &mut LintReport) {
    if ctx.topo.is_none() {
        return;
    }
    for (cell_id, cell) in nl.cells() {
        if cell.kind() == CellKind::Dff {
            continue;
        }
        if ctx.constant[cell.output().index()].is_some() {
            continue;
        }
        let mut rise = None;
        let mut fall = None;
        for (pin, &input) in cell.inputs().iter().enumerate() {
            if ctx.constant[input.index()].is_some() {
                continue;
            }
            let Some(level) = ctx.spacer[input.index()] else {
                continue; // D104 reports unprovable spacer values.
            };
            let input_rises = !level;
            let implied_rise = match cell.kind().unateness(pin) {
                Unateness::Positive => input_rises,
                Unateness::Negative => !input_rises,
                Unateness::NonUnate => continue, // T201 reports the cell.
            };
            if implied_rise {
                rise = Some(input);
            } else {
                fall = Some(input);
            }
        }
        if let (Some(r), Some(f)) = (rise, fall) {
            report.push(
                DiagCode::DirectionConflict,
                Severity::Error,
                format!(
                    "cell {:?} ({}) joins conflicting transition directions: net {:?} \
                     drives its output up while net {:?} drives it down in the same \
                     phase — the output can glitch",
                    cell.name(),
                    cell.kind(),
                    nl.net(r).name(),
                    nl.net(f).name(),
                ),
                vec![r, f],
                vec![cell_id],
            );
        }
    }
}

fn separation(
    dr: &DualRailNetlist,
    library: &Library,
    config: &LintConfig,
    ctx: &Context,
    report: &mut LintReport,
) {
    let margin = config.separation_margin;
    if !margin.is_finite() || margin < 0.0 {
        report.push(
            DiagCode::SeparationHazard,
            Severity::Error,
            format!(
                "separation margin {margin} is not a finite non-negative fraction; \
                 the wavefront injection interval is undefined"
            ),
            vec![],
            vec![],
        );
        return;
    }
    if ctx.topo.is_none() {
        return;
    }
    let nl = dr.netlist();

    // Outputs (and `done`) that can never transition give the wavefront
    // schedule a zero-width observation window: completion would never
    // acknowledge a token, and the pipelined drivers' separation bounds
    // are computed over an empty transition set.
    let mut flag_constant = |name: &str, nets: &[netlist::NetId], what: &str| {
        if !nets.is_empty() && nets.iter().all(|n| ctx.constant[n.index()].is_some()) {
            report.push(
                DiagCode::SeparationHazard,
                Severity::Error,
                format!(
                    "{what} {name:?} is structurally constant: it never transitions, \
                     so completion and the wavefront separation interval are undefined"
                ),
                nets.to_vec(),
                vec![],
            );
        }
    };
    for (name, signal) in dr.dual_outputs() {
        flag_constant(name, &[signal.positive, signal.negative], "output");
    }
    for (name, wires) in dr.one_of_n_outputs() {
        flag_constant(name, wires, "1-of-n output");
    }
    if let Some(done) = dr.done() {
        if ctx.constant[done.index()].is_some() {
            report.push(
                DiagCode::SeparationHazard,
                Severity::Error,
                "completion signal `done` is structurally constant and can never \
                 acknowledge a token"
                    .to_string(),
                vec![done],
                vec![],
            );
        }
    }

    // Min/max arrival cross-check: the margin-widened settle bound the
    // pipelined drivers inject at must cover the worst min/max path
    // skew joining at any cell, or a second token's fastest edge could
    // reach a join before the first token's slowest edge has cleared.
    let Ok(arrival) = ArrivalAnalysis::compute(nl, library) else {
        return; // S004 reported the cycle.
    };
    let mut earliest: Vec<f64> = vec![f64::INFINITY; nl.net_count()];
    for (id, net) in nl.nets() {
        if matches!(net.driver(), NetDriver::None | NetDriver::PrimaryInput) {
            earliest[id.index()] = 0.0;
        }
    }
    if let Some(topo) = &ctx.topo {
        for &cell_id in topo {
            let cell = nl.cell(cell_id);
            if cell.kind() == CellKind::Dff {
                earliest[cell.output().index()] = 0.0;
                continue;
            }
            let delay = library.cell_delay(cell.kind(), nl.net(cell.output()).fanout().max(1));
            let min_in = if cell.inputs().is_empty() {
                0.0
            } else {
                cell.inputs()
                    .iter()
                    .map(|n| earliest[n.index()])
                    .fold(f64::INFINITY, f64::min)
            };
            earliest[cell.output().index()] = min_in + delay;
        }
    }
    let settle_bound = arrival.max_internal_ps();
    let interval = (1.0 + margin) * settle_bound;
    let mut max_skew = 0.0f64;
    for (cell_id, cell) in nl.cells() {
        if cell.inputs().len() < 2 {
            continue;
        }
        let latest_in = cell
            .inputs()
            .iter()
            .map(|n| arrival.arrival_ps(*n))
            .fold(0.0f64, f64::max);
        let earliest_in = cell
            .inputs()
            .iter()
            .map(|n| earliest[n.index()])
            .fold(f64::INFINITY, f64::min);
        if !earliest_in.is_finite() {
            continue;
        }
        let skew = (latest_in - earliest_in).max(0.0);
        max_skew = max_skew.max(skew);
        if skew > interval {
            report.push(
                DiagCode::SeparationHazard,
                Severity::Error,
                format!(
                    "cell {:?} joins paths with {skew:.1} ps min/max skew, beyond the \
                     margin-widened settle bound {interval:.1} ps (margin {margin}): \
                     a pipelined wavefront can overtake the previous token here",
                    cell.name(),
                ),
                vec![],
                vec![cell_id],
            );
        }
    }
    report.stats.settle_bound_ps = settle_bound;
    report.stats.max_join_skew_ps = max_skew;
}
