//! Machine-readable lint findings: diagnostic codes, severities and the
//! [`LintReport`] container with text and JSON renderings.

use netlist::{CellId, NetId};

/// How serious a finding is.
///
/// The pre-flight verifier and the CI gate reject on [`Severity::Error`]
/// only; shipped netlists are additionally expected to be free of
/// warnings (`lint_smoke` asserts an empty report).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation; never gates anything.
    Info,
    /// Suspicious structure that does not break the protocol by itself.
    Warning,
    /// A proven invariant violation.
    Error,
}

impl Severity {
    /// Stable lower-case name used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The analysis family a diagnostic code belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Netlist graph structure (any netlist).
    Structural,
    /// Dual-rail / four-phase protocol invariants.
    DualRail,
    /// Timing and hazard invariants behind the wavefront bounds.
    Timing,
}

impl Family {
    /// Stable lower-case name used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Structural => "structural",
            Family::DualRail => "dual-rail",
            Family::Timing => "timing",
        }
    }
}

/// Stable diagnostic codes.
///
/// The `Sxxx`/`Dxxx`/`Txxx` strings are part of the tool's contract:
/// the mutation suite, the CI gate and ARCHITECTURE.md all key on them,
/// so codes are never renumbered — retired codes would be left as gaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `S001` — a net with loads or an output-port binding has no driver.
    UndrivenNet,
    /// `S002` — a net drives nothing and is not observed by any port,
    /// probe or completion signal.
    FloatingNet,
    /// `S003` — a cell whose output cone reaches no primary output,
    /// probe or completion signal (dead logic).
    UnreachableCell,
    /// `S004` — a combinational feedback loop (state holding is
    /// sanctioned only inside C-elements and flip-flops).
    CombinationalLoop,
    /// `S005` — more than one driver contends for a net.
    MultiplyDrivenNet,
    /// `D101` — a dual-rail signal's rails alias the same net or the
    /// same driving cell, so one cone drives both rails.
    RailPairing,
    /// `D102` — an observed output rail pair (or 1-of-n wire) is not
    /// covered by the completion tree, or there is no `done` at all.
    CompletionCoverage,
    /// `D103` — a declared probe net feeds the completion network.
    ProbeInCompletion,
    /// `D104` — the circuit does not provably return every observed net
    /// to its spacer level when all inputs are at spacer (Kleene
    /// three-valued evaluation).
    SpacerUnreachable,
    /// `T201` — a non-unate cell (XOR/XNOR) breaks monotonic switching
    /// (the paper's Requirement 2).
    NonUnateCell,
    /// `T202` — a cell joins inputs whose spacer→valid transition
    /// directions conflict under its pin unateness, so its output can
    /// glitch and the wavefront timing bounds do not apply.
    DirectionConflict,
    /// `T203` — the static separation interval the wavefront pipeline
    /// relies on is degenerate (constant outputs / `done`, or an
    /// invalid separation margin), or a join's min/max path skew
    /// exceeds the margin-widened settle bound.
    SeparationHazard,
}

impl DiagCode {
    /// Every code, in report order.
    pub const ALL: [DiagCode; 12] = [
        DiagCode::UndrivenNet,
        DiagCode::FloatingNet,
        DiagCode::UnreachableCell,
        DiagCode::CombinationalLoop,
        DiagCode::MultiplyDrivenNet,
        DiagCode::RailPairing,
        DiagCode::CompletionCoverage,
        DiagCode::ProbeInCompletion,
        DiagCode::SpacerUnreachable,
        DiagCode::NonUnateCell,
        DiagCode::DirectionConflict,
        DiagCode::SeparationHazard,
    ];

    /// The stable code string (`S001` … `T203`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::UndrivenNet => "S001",
            DiagCode::FloatingNet => "S002",
            DiagCode::UnreachableCell => "S003",
            DiagCode::CombinationalLoop => "S004",
            DiagCode::MultiplyDrivenNet => "S005",
            DiagCode::RailPairing => "D101",
            DiagCode::CompletionCoverage => "D102",
            DiagCode::ProbeInCompletion => "D103",
            DiagCode::SpacerUnreachable => "D104",
            DiagCode::NonUnateCell => "T201",
            DiagCode::DirectionConflict => "T202",
            DiagCode::SeparationHazard => "T203",
        }
    }

    /// The analysis family the code belongs to.
    #[must_use]
    pub fn family(self) -> Family {
        match self {
            DiagCode::UndrivenNet
            | DiagCode::FloatingNet
            | DiagCode::UnreachableCell
            | DiagCode::CombinationalLoop
            | DiagCode::MultiplyDrivenNet => Family::Structural,
            DiagCode::RailPairing
            | DiagCode::CompletionCoverage
            | DiagCode::ProbeInCompletion
            | DiagCode::SpacerUnreachable => Family::DualRail,
            DiagCode::NonUnateCell | DiagCode::DirectionConflict | DiagCode::SeparationHazard => {
                Family::Timing
            }
        }
    }

    /// One-line description of the invariant the code checks.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::UndrivenNet => "net with loads or an output port has no driver",
            DiagCode::FloatingNet => "net drives nothing and is observed by nothing",
            DiagCode::UnreachableCell => "cell reaches no output, probe or completion signal",
            DiagCode::CombinationalLoop => "combinational feedback outside state-holding cells",
            DiagCode::MultiplyDrivenNet => "net has more than one driver",
            DiagCode::RailPairing => "dual-rail signal's rails share a net or a driving cell",
            DiagCode::CompletionCoverage => "completion tree does not observe every output",
            DiagCode::ProbeInCompletion => "probe net feeds the completion network",
            DiagCode::SpacerUnreachable => "observed net does not provably return to spacer",
            DiagCode::NonUnateCell => "non-unate cell breaks monotonic switching",
            DiagCode::DirectionConflict => "inputs with conflicting transition directions join",
            DiagCode::SeparationHazard => "wavefront separation interval is degenerate",
        }
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code.
    pub code: DiagCode,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// Human-readable message (already names the nets/cells involved).
    pub message: String,
    /// Nets the finding anchors to.
    pub nets: Vec<NetId>,
    /// Cells the finding anchors to.
    pub cells: Vec<CellId>,
}

/// Aggregate statistics collected while linting (always reported, even
/// on a clean netlist).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintStats {
    /// Cells in the netlist.
    pub cells: usize,
    /// Nets in the netlist.
    pub nets: usize,
    /// State-holding cells (C-elements and flip-flops).
    pub sequential_cells: usize,
    /// `(fanout, net count)` pairs, ascending by fanout.
    pub fanout_histogram: Vec<(usize, usize)>,
    /// Largest fanout of any net.
    pub max_fanout: usize,
    /// Static settle bound `t_int` in picoseconds (0 when timing was
    /// not analysed).
    pub settle_bound_ps: f64,
    /// Largest min/max arrival skew across any cell's input pins in
    /// picoseconds (0 when timing was not analysed).
    pub max_join_skew_ps: f64,
}

/// The result of one lint pass over one netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct LintReport {
    /// Name of the linted netlist.
    pub target: String,
    /// Codes the pass evaluated (a code can only be trusted absent if
    /// it is listed here — the single-rail entry point skips the
    /// dual-rail and timing families, for example).
    pub codes_checked: Vec<DiagCode>,
    /// Findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
    /// Aggregate statistics.
    pub stats: LintStats,
}

impl LintReport {
    pub(crate) fn new(target: impl Into<String>) -> Self {
        Self {
            target: target.into(),
            codes_checked: Vec::new(),
            diagnostics: Vec::new(),
            stats: LintStats::default(),
        }
    }

    pub(crate) fn push(
        &mut self,
        code: DiagCode,
        severity: Severity,
        message: String,
        nets: Vec<NetId>,
        cells: Vec<CellId>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            message,
            nets,
            cells,
        });
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the report carries no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries `code`.
    #[must_use]
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the findings as one human-readable block.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint {}: {} error(s), {} warning(s) over {} cells / {} nets \
             ({} codes checked)",
            self.target,
            self.error_count(),
            self.warning_count(),
            self.stats.cells,
            self.stats.nets,
            self.codes_checked.len(),
        );
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "  [{}] {}: {}",
                d.code.as_str(),
                d.severity.as_str(),
                d.message
            );
        }
        out
    }

    /// Renders a one-line summary of the error-severity findings (used
    /// by the pre-flight hook's rejection message).
    #[must_use]
    pub fn render_errors(&self) -> String {
        let msgs: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| format!("[{}] {}", d.code.as_str(), d.message))
            .collect();
        format!("{}: {}", self.target, msgs.join("; "))
    }

    /// Serialises the report as a JSON object (hand-rolled; the
    /// workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"target\": {}, \"errors\": {}, \"warnings\": {}, \"codes_checked\": [",
            json_string(&self.target),
            self.error_count(),
            self.warning_count(),
        );
        for (i, code) in self.codes_checked.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", code.as_str());
        }
        out.push_str("], \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let nets: Vec<String> = d.nets.iter().map(|n| n.index().to_string()).collect();
            let cells: Vec<String> = d.cells.iter().map(|c| c.index().to_string()).collect();
            let _ = write!(
                out,
                "{{\"code\": \"{}\", \"family\": \"{}\", \"severity\": \"{}\", \
                 \"message\": {}, \"nets\": [{}], \"cells\": [{}]}}",
                d.code.as_str(),
                d.code.family().as_str(),
                d.severity.as_str(),
                json_string(&d.message),
                nets.join(", "),
                cells.join(", "),
            );
        }
        out.push_str("], \"stats\": ");
        let hist: Vec<String> = self
            .stats
            .fanout_histogram
            .iter()
            .map(|(fanout, count)| format!("[{fanout}, {count}]"))
            .collect();
        let _ = write!(
            out,
            "{{\"cells\": {}, \"nets\": {}, \"sequential_cells\": {}, \
             \"max_fanout\": {}, \"fanout_histogram\": [{}], \
             \"settle_bound_ps\": {:.3}, \"max_join_skew_ps\": {:.3}}}}}",
            self.stats.cells,
            self.stats.nets,
            self.stats.sequential_cells,
            self.stats.max_fanout,
            hist.join(", "),
            self.stats.settle_bound_ps,
            self.stats.max_join_skew_ps,
        );
        out
    }
}

/// Escapes a string for embedding in JSON.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
