//! Static QDI netlist verifier (`tm-lint`).
//!
//! Every correctness guarantee the runtime offers — the reset-phase
//! contract, illegal-codeword detection, the wavefront-hazard checks —
//! fires *dynamically*, per token.  This crate proves the structural
//! properties those checks rest on **once, statically, per netlist**:
//!
//! * **structural** (`S001`–`S005`) — undriven/floating nets, multiple
//!   drivers, unreachable cells, combinational loops outside sanctioned
//!   state-holding cells, plus a fanout histogram;
//! * **dual-rail protocol** (`D101`–`D104`) — rail pairing, completion
//!   coverage of every observed output, probe isolation from the
//!   completion network, and return-to-zero reachability via Kleene
//!   three-valued evaluation of the netlist under all-spacer inputs;
//! * **timing/hazard** (`T201`–`T203`) — unate cells only
//!   (Requirement 2), consistent transition directions at every join,
//!   and a non-degenerate wavefront separation interval cross-checked
//!   against min/max path-skew bounds from [`sta::ArrivalAnalysis`].
//!
//! Diagnostic codes are stable; ARCHITECTURE.md maps each one to the
//! dynamic check it subsumes.
//!
//! # Entry points
//!
//! * [`lint_dual_rail`] — the full pass over a
//!   [`dualrail::DualRailNetlist`];
//! * [`lint_netlist`] — the structural family over any bare
//!   [`netlist::Netlist`] (single-rail netlists legitimately use XOR,
//!   so the dual-rail and timing families do not apply);
//! * [`lint_program`] — the full pass via a compiled
//!   [`gatesim::EngineProgram`], with compilation-consistency checks;
//! * [`verify_static`] — the cached pass/fail form the pre-flight hook
//!   uses ([`preflight::install`] wires it into every
//!   `ProtocolDriver` construction in the process).
//!
//! # Example
//!
//! ```
//! use celllib::Library;
//! use dualrail::{DualRailNetlist, ReducedCompletion};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dr = DualRailNetlist::new("and_gate");
//! let a = dr.add_dual_input("a");
//! let b = dr.add_dual_input("b");
//! let y = dr.and2("y", a, b)?;
//! dr.add_dual_output("y", y);
//! ReducedCompletion::insert(&mut dr)?;
//!
//! let report = tm_lint::lint_dual_rail(&dr, &Library::umc_ll(), &Default::default());
//! assert!(report.is_clean(), "{}", report.render_text());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyze;
pub mod mutate;
pub mod preflight;
mod protocol;
pub mod report;
mod structural;
mod timing;

use celllib::Library;
use dualrail::DualRailNetlist;
use gatesim::EngineProgram;
use netlist::{NetId, Netlist};

pub use report::{DiagCode, Diagnostic, Family, LintReport, LintStats, Severity};

/// Tunables for the timing family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LintConfig {
    /// Fractional slack the wavefront pipeline adds to its static
    /// separation bounds (mirrors
    /// `dualrail::PipelineConfig::separation_margin`).
    pub separation_margin: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            separation_margin: 0.10,
        }
    }
}

/// Runs the structural family over a bare netlist.
///
/// Use this for single-rail netlists (the synchronous golden model uses
/// XOR, so the dual-rail and timing families do not apply to it).
#[must_use]
pub fn lint_netlist(nl: &Netlist) -> LintReport {
    let mut report = LintReport::new(nl.name());
    structural::run(nl, &[], &mut report);
    report
}

/// Runs all three analysis families over a dual-rail netlist.
#[must_use]
pub fn lint_dual_rail(dr: &DualRailNetlist, library: &Library, config: &LintConfig) -> LintReport {
    let nl = dr.netlist();
    let mut report = LintReport::new(nl.name());
    let mut observed: Vec<NetId> = dr.observed_output_nets();
    if let Some(done) = dr.done() {
        observed.push(done);
    }
    for (_, signal) in dr.probes() {
        observed.push(signal.positive);
        observed.push(signal.negative);
    }
    structural::run(nl, &observed, &mut report);
    let ctx = analyze::Context::compute(dr);
    protocol::run(dr, &ctx, &mut report);
    timing::run(dr, library, config, &ctx, &mut report);
    report
}

/// Runs the full dual-rail pass through a compiled engine program,
/// first checking that the compilation is consistent with the circuit.
///
/// # Panics
///
/// Panics if `program` was not compiled from this circuit's netlist —
/// the same contract as `ProtocolDriver::from_program`.
#[must_use]
pub fn lint_program(
    dr: &DualRailNetlist,
    program: &EngineProgram<'_>,
    library: &Library,
    config: &LintConfig,
) -> LintReport {
    assert!(
        std::ptr::eq(program.netlist(), dr.netlist()),
        "the engine program must be compiled from this circuit's netlist"
    );
    lint_dual_rail(dr, library, config)
}

/// The cached pass/fail form of [`lint_dual_rail`]: `Err` carries the
/// rendered error-severity findings.  Results are cached per netlist
/// identity (drivers replicated from one `Arc<EngineProgram>` share a
/// netlist, so a sharded run verifies once); see [`preflight`].
///
/// # Errors
///
/// Returns the rendered findings if the report contains any
/// error-severity diagnostic.
pub fn verify_static(dr: &DualRailNetlist) -> Result<(), String> {
    preflight::verify_cached(dr)
}
