//! Shared static-analysis machinery: backward reachability, topological
//! evaluation under Kleene three-valued logic, and the derived spacer /
//! constant classifications the dual-rail and timing families key on.

use std::collections::HashSet;

use dualrail::DualRailNetlist;
use netlist::graph::topological_order;
use netlist::{CellId, CellKind, NetDriver, NetId, Netlist};

/// Backward reachability from `seeds`: every cell and net in the fanin
/// cone of any seed net (seeds included).
pub(crate) fn fanin(nl: &Netlist, seeds: &[NetId]) -> (HashSet<CellId>, HashSet<NetId>) {
    let mut cells = HashSet::new();
    let mut nets: HashSet<NetId> = seeds.iter().copied().collect();
    let mut stack: Vec<NetId> = seeds.to_vec();
    while let Some(net) = stack.pop() {
        if let NetDriver::Cell(cell) = nl.net(net).driver() {
            if cells.insert(cell) {
                for &input in nl.cell(cell).inputs() {
                    if nets.insert(input) {
                        stack.push(input);
                    }
                }
            }
        }
    }
    (cells, nets)
}

/// Topological evaluation with Kleene semantics: unknown (`None`) inputs
/// stay unknown unless a controlling value decides the output.
/// Flip-flop outputs are history-dependent and evaluate to unknown;
/// C-elements resolve only when their inputs agree.
pub(crate) fn eval_kleene(
    nl: &Netlist,
    topo: &[CellId],
    input_value: impl Fn(NetId) -> Option<bool>,
) -> Vec<Option<bool>> {
    let mut values: Vec<Option<bool>> = vec![None; nl.net_count()];
    for (id, _) in nl.nets() {
        if nl.is_primary_input(id) {
            values[id.index()] = input_value(id);
        }
    }
    let mut pins: Vec<Option<bool>> = Vec::with_capacity(CellKind::MAX_INPUTS);
    for &cell_id in topo {
        let cell = nl.cell(cell_id);
        if cell.kind() == CellKind::Dff {
            continue;
        }
        pins.clear();
        pins.extend(cell.inputs().iter().map(|n| values[n.index()]));
        values[cell.output().index()] = cell.kind().eval_tristate(&pins, None);
    }
    values
}

/// Everything the dual-rail and timing families need from one netlist,
/// computed once.
pub(crate) struct Context {
    /// Topological cell order; `None` if the netlist has a cycle (the
    /// structural family reports it and value-based passes are skipped).
    pub topo: Option<Vec<CellId>>,
    /// Settled value of every net with all dual-rail inputs at spacer
    /// and `req` low; `None` entries cannot be proven to settle.
    pub spacer: Vec<Option<bool>>,
    /// Value of every net with all primary inputs unknown; `Some`
    /// entries are structurally constant (tie cells and their cones).
    pub constant: Vec<Option<bool>>,
}

impl Context {
    pub(crate) fn compute(dr: &DualRailNetlist) -> Self {
        let nl = dr.netlist();
        let topo = topological_order(nl).ok();
        let (spacer, constant) = match &topo {
            Some(topo) => {
                let mut rail_spacer: Vec<Option<bool>> = vec![None; nl.net_count()];
                for (_, signal) in dr.dual_inputs() {
                    let level = Some(signal.polarity.spacer_level());
                    rail_spacer[signal.positive.index()] = level;
                    rail_spacer[signal.negative.index()] = level;
                }
                if let Some(req) = nl.find_net("req").filter(|&n| nl.is_primary_input(n)) {
                    rail_spacer[req.index()] = Some(false);
                }
                let spacer = eval_kleene(nl, topo, |net| rail_spacer[net.index()]);
                let constant = eval_kleene(nl, topo, |_| None);
                (spacer, constant)
            }
            None => (vec![None; nl.net_count()], vec![None; nl.net_count()]),
        };
        Self {
            topo,
            spacer,
            constant,
        }
    }
}
