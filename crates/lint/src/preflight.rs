//! The pre-flight wiring: a cached [`crate::verify_static`] registered
//! as the process-wide hook every `ProtocolDriver` (and therefore every
//! parallel, sliced and pipelined driver) runs at construction.
//!
//! Call [`install`] once near the top of a binary (the datapath
//! inference runtimes do it for you) and every driver constructed
//! afterwards rejects netlists with error-severity findings via
//! `DualRailError::StaticVerification` — before a single event is
//! simulated, and in particular before a retrained netlist could be
//! hot-swapped under live traffic.
//!
//! Verification runs once per netlist: results are memoised under a
//! fingerprint of the netlist's address, shape and name, so the N
//! drivers of a sharded run (all replicated from one
//! `Arc<EngineProgram>` borrowing one netlist) pay for one lint pass
//! plus N hash lookups.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

use celllib::Library;
use dualrail::DualRailNetlist;
use netlist::Netlist;

use crate::{lint_dual_rail, LintConfig};

/// Identity of one verified netlist.  The address alone is unsafe (an
/// allocator can reuse it after a drop), so the shape and name hash are
/// folded in; a collision would need a new netlist of identical name,
/// cell count and net count at the same address — in which case the
/// cached verdict is the verdict of an identically shaped netlist.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Fingerprint {
    addr: usize,
    cells: usize,
    nets: usize,
    name_hash: u64,
}

impl Fingerprint {
    fn of(nl: &Netlist) -> Self {
        let mut hasher = DefaultHasher::new();
        nl.name().hash(&mut hasher);
        Self {
            addr: std::ptr::from_ref(nl) as usize,
            cells: nl.cell_count(),
            nets: nl.net_count(),
            name_hash: hasher.finish(),
        }
    }
}

/// Bounded memo: one entry per distinct netlist seen by this process.
const CACHE_CAP: usize = 256;

fn cache() -> &'static Mutex<HashMap<Fingerprint, Result<(), String>>> {
    static CACHE: OnceLock<Mutex<HashMap<Fingerprint, Result<(), String>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The memoised verification behind [`crate::verify_static`].
pub(crate) fn verify_cached(dr: &DualRailNetlist) -> Result<(), String> {
    let fingerprint = Fingerprint::of(dr.netlist());
    if let Ok(map) = cache().lock() {
        if let Some(verdict) = map.get(&fingerprint) {
            return verdict.clone();
        }
    }
    let report = lint_dual_rail(dr, &Library::umc_ll(), &LintConfig::default());
    let verdict = if report.error_count() == 0 {
        Ok(())
    } else {
        Err(report.render_errors())
    };
    if let Ok(mut map) = cache().lock() {
        if map.len() >= CACHE_CAP {
            map.clear();
        }
        map.insert(fingerprint, verdict.clone());
    }
    verdict
}

/// Installs [`crate::verify_static`] as the process-wide driver
/// pre-flight hook (see [`dualrail::preflight`]).  Idempotent; returns
/// `false` if a hook (this one or another) was already installed.
pub fn install() -> bool {
    dualrail::preflight::install_hook(crate::verify_static)
}

/// Whether a pre-flight hook is installed in this process.
#[must_use]
pub fn installed() -> bool {
    dualrail::preflight::hook_installed()
}
