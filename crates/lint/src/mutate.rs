//! Seeded netlist mutations for exercising the verifier.
//!
//! Each [`MutationKind`] builds a small dual-rail circuit with exactly
//! one deliberate defect and names the diagnostic code the verifier
//! must raise for it.  The unmutated [`base_circuit`] is clean by
//! construction, so the property the test suite (and the `lint_smoke`
//! CI gate) checks is sharp: *mutant ⇒ expected code present, base ⇒
//! empty report*.

use dualrail::{DualRailNetlist, DualRailSignal, ReducedCompletion, SpacerPolarity};
use netlist::CellKind;

use crate::report::DiagCode;

/// The deliberate defects the suite can inject, covering all three
/// analysis families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// A named net with no driver and no loads (`S002`).
    OrphanNet,
    /// A cell reading a net nothing drives (`S001`).
    UndrivenInput,
    /// A two-cell cone whose output reaches nothing (`S003`).
    DeadCone,
    /// A buffer loop with no state-holding cell on it (`S004`).
    CombinationalLoop,
    /// An output signal whose rails alias one net (`D101`).
    RailAlias,
    /// No completion network at all (`D102`).
    MissingDone,
    /// A completion tree that observes only one of two outputs
    /// (`D102`).
    DropCompletionInput,
    /// A probe's validity detector wired into the C-element tree
    /// (`D103`) — the stale-probe case.
    ProbeIntoCompletion,
    /// An output rail behind a level inverter, so it idles at 1
    /// (`D104`).
    InvertedRail,
    /// An XOR on the rails (`T201`, Requirement 2).
    NonUnateGate,
    /// A join of one rising and one falling input (`T202`).
    DirectionConflict,
    /// An output tied to constants, so completion never fires and the
    /// wavefront separation interval is undefined (`T203`).
    ConstantOutput,
}

impl MutationKind {
    /// Every mutation kind.
    pub const ALL: [MutationKind; 12] = [
        MutationKind::OrphanNet,
        MutationKind::UndrivenInput,
        MutationKind::DeadCone,
        MutationKind::CombinationalLoop,
        MutationKind::RailAlias,
        MutationKind::MissingDone,
        MutationKind::DropCompletionInput,
        MutationKind::ProbeIntoCompletion,
        MutationKind::InvertedRail,
        MutationKind::NonUnateGate,
        MutationKind::DirectionConflict,
        MutationKind::ConstantOutput,
    ];

    /// The diagnostic code the verifier must raise for this mutation.
    #[must_use]
    pub fn expected_code(self) -> DiagCode {
        match self {
            MutationKind::OrphanNet => DiagCode::FloatingNet,
            MutationKind::UndrivenInput => DiagCode::UndrivenNet,
            MutationKind::DeadCone => DiagCode::UnreachableCell,
            MutationKind::CombinationalLoop => DiagCode::CombinationalLoop,
            MutationKind::RailAlias => DiagCode::RailPairing,
            MutationKind::MissingDone | MutationKind::DropCompletionInput => {
                DiagCode::CompletionCoverage
            }
            MutationKind::ProbeIntoCompletion => DiagCode::ProbeInCompletion,
            MutationKind::InvertedRail => DiagCode::SpacerUnreachable,
            MutationKind::NonUnateGate => DiagCode::NonUnateCell,
            MutationKind::DirectionConflict => DiagCode::DirectionConflict,
            MutationKind::ConstantOutput => DiagCode::SeparationHazard,
        }
    }

    /// Stable name used in smoke output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MutationKind::OrphanNet => "orphan_net",
            MutationKind::UndrivenInput => "undriven_input",
            MutationKind::DeadCone => "dead_cone",
            MutationKind::CombinationalLoop => "combinational_loop",
            MutationKind::RailAlias => "rail_alias",
            MutationKind::MissingDone => "missing_done",
            MutationKind::DropCompletionInput => "drop_completion_input",
            MutationKind::ProbeIntoCompletion => "probe_into_completion",
            MutationKind::InvertedRail => "inverted_rail",
            MutationKind::NonUnateGate => "non_unate_gate",
            MutationKind::DirectionConflict => "direction_conflict",
            MutationKind::ConstantOutput => "constant_output",
        }
    }
}

/// Builds the half-finished base: three dual-rail inputs, a probed
/// intermediate product and two outputs, **without** completion (so
/// mutations can build broken completion networks).
fn open_base(name: String, seed: u64) -> (DualRailNetlist, Parts) {
    let mut dr = DualRailNetlist::new(name);
    let a = dr.add_dual_input("a");
    let b = dr.add_dual_input("b");
    let c = dr.add_dual_input("c");
    let t = dr.and2("t", a, b).expect("base and2");
    dr.declare_probe("t", t);
    let y0 = dr.or2("y0", t, c).expect("base or2");
    let y1 = dr.and2("y1", a, c).expect("base and2");
    dr.add_dual_output("y0", y0);
    dr.add_dual_output("y1", y1);
    let inputs = [a, b, c];
    let picked = inputs[(seed % 3) as usize];
    (dr, Parts { picked, t, y0, y1 })
}

/// Signals of the base circuit a mutation may target.
struct Parts {
    /// Seed-selected dual-rail input.
    picked: DualRailSignal,
    /// The probed intermediate.
    t: DualRailSignal,
    /// First output.
    y0: DualRailSignal,
    /// Second output.
    y1: DualRailSignal,
}

/// The clean reference circuit for `seed` (completion inserted).
///
/// # Panics
///
/// Panics only on netlist-construction bugs in this module.
#[must_use]
pub fn base_circuit(seed: u64) -> DualRailNetlist {
    let (mut dr, _) = open_base(format!("lint_base_{seed}"), seed);
    ReducedCompletion::insert(&mut dr).expect("completion over two outputs");
    dr
}

/// Builds the mutant for `kind` and `seed`.
///
/// # Panics
///
/// Panics only on netlist-construction bugs in this module.
#[must_use]
pub fn mutant(kind: MutationKind, seed: u64) -> DualRailNetlist {
    let name = format!("lint_mutant_{}_{seed}", kind.as_str());
    let (mut dr, parts) = open_base(name, seed);
    match kind {
        MutationKind::OrphanNet => {
            ReducedCompletion::insert(&mut dr).expect("completion");
            dr.netlist_mut()
                .add_net_named(format!("orphan_{seed}"))
                .expect("fresh net name");
        }
        MutationKind::UndrivenInput => {
            ReducedCompletion::insert(&mut dr).expect("completion");
            let nl = dr.netlist_mut();
            let src = nl
                .add_net_named(format!("undriven_src_{seed}"))
                .expect("fresh net name");
            nl.add_cell(format!("ghost_{seed}"), CellKind::Buf, &[src])
                .expect("ghost cell");
        }
        MutationKind::DeadCone => {
            ReducedCompletion::insert(&mut dr).expect("completion");
            let rail = parts.picked.positive;
            let nl = dr.netlist_mut();
            let mid = nl
                .add_cell(format!("dead1_{seed}"), CellKind::Buf, &[rail])
                .expect("dead cell 1");
            nl.add_cell(format!("dead2_{seed}"), CellKind::Buf, &[mid])
                .expect("dead cell 2");
        }
        MutationKind::CombinationalLoop => {
            ReducedCompletion::insert(&mut dr).expect("completion");
            let nl = dr.netlist_mut();
            let back = nl
                .add_net_named(format!("loop_back_{seed}"))
                .expect("fresh net name");
            let fwd = nl
                .add_cell(format!("loop_fwd_{seed}"), CellKind::Buf, &[back])
                .expect("loop cell");
            nl.add_cell_with_output(format!("loop_close_{seed}"), CellKind::Buf, &[fwd], back)
                .expect("loop closes");
        }
        MutationKind::RailAlias => {
            let alias = DualRailSignal::new(
                parts.y0.positive,
                parts.y0.positive,
                SpacerPolarity::AllZero,
            );
            dr.add_dual_output("alias", alias);
            ReducedCompletion::insert(&mut dr).expect("completion");
        }
        MutationKind::MissingDone => {}
        MutationKind::DropCompletionInput => {
            // Observe y0 only; y1 settles unacknowledged.
            let done = dr
                .netlist_mut()
                .add_cell(
                    "cd_valid_y0",
                    CellKind::Or2,
                    &[parts.y0.positive, parts.y0.negative],
                )
                .expect("validity detector");
            dr.set_done(done);
        }
        MutationKind::ProbeIntoCompletion => {
            // A full hand-built tree — with the probe's validity
            // detector as a third completion input (the stale-probe
            // case: `done` re-times on a signal that is not an output).
            let pairs = [("y0", parts.y0), ("y1", parts.y1), ("probe_t", parts.t)];
            let mut validity = Vec::new();
            for (tag, signal) in pairs {
                let v = dr
                    .netlist_mut()
                    .add_cell(
                        format!("cd_valid_{tag}"),
                        CellKind::Or2,
                        &[signal.positive, signal.negative],
                    )
                    .expect("validity detector");
                validity.push(v);
            }
            let done = dr
                .netlist_mut()
                .add_c_element_tree("cd_done", &validity)
                .expect("C-element tree");
            dr.set_done(done);
        }
        MutationKind::InvertedRail => {
            let inv = dr
                .netlist_mut()
                .add_cell(
                    format!("rail_inv_{seed}"),
                    CellKind::Inv,
                    &[parts.y1.positive],
                )
                .expect("rail inverter");
            let broken = DualRailSignal::new(inv, parts.y1.negative, SpacerPolarity::AllZero);
            dr.add_dual_output("y1_inv", broken);
            ReducedCompletion::insert(&mut dr).expect("completion");
        }
        MutationKind::NonUnateGate => {
            let (p, n) = {
                let nl = dr.netlist_mut();
                let p = nl
                    .add_cell(
                        format!("bad_xor_{seed}"),
                        CellKind::Xor2,
                        &[parts.picked.positive, parts.t.positive],
                    )
                    .expect("xor cell");
                let n = nl
                    .add_cell(
                        format!("bad_xor_n_{seed}"),
                        CellKind::Or2,
                        &[parts.picked.negative, parts.t.negative],
                    )
                    .expect("companion rail");
                (p, n)
            };
            dr.add_dual_output("yx", DualRailSignal::new(p, n, SpacerPolarity::AllZero));
            ReducedCompletion::insert(&mut dr).expect("completion");
        }
        MutationKind::DirectionConflict => {
            let (p, n) = {
                let nl = dr.netlist_mut();
                let inv = nl
                    .add_cell(
                        format!("dc_inv_{seed}"),
                        CellKind::Inv,
                        &[parts.picked.positive],
                    )
                    .expect("inverter");
                let p = nl
                    .add_cell(
                        format!("dc_join_{seed}"),
                        CellKind::And2,
                        &[parts.t.positive, inv],
                    )
                    .expect("conflicting join");
                let n = nl
                    .add_cell(
                        format!("dc_n_{seed}"),
                        CellKind::Or2,
                        &[parts.t.negative, parts.picked.negative],
                    )
                    .expect("companion rail");
                (p, n)
            };
            dr.add_dual_output("dc", DualRailSignal::new(p, n, SpacerPolarity::AllZero));
            ReducedCompletion::insert(&mut dr).expect("completion");
        }
        MutationKind::ConstantOutput => {
            let (p, n) = {
                let nl = dr.netlist_mut();
                let p = nl
                    .add_cell(format!("tie_p_{seed}"), CellKind::Tie0, &[])
                    .expect("tie cell");
                let n = nl
                    .add_cell(format!("tie_n_{seed}"), CellKind::Tie0, &[])
                    .expect("tie cell");
                (p, n)
            };
            dr.add_dual_output("konst", DualRailSignal::new(p, n, SpacerPolarity::AllZero));
            ReducedCompletion::insert(&mut dr).expect("completion");
        }
    }
    dr
}
