//! Dual-rail protocol family (`D101`–`D104`): rail pairing, completion
//! coverage, probe isolation and return-to-zero reachability.

use std::collections::HashMap;

use dualrail::{DualRailNetlist, DualRailSignal};
use netlist::{NetDriver, NetId};

use crate::analyze::{fanin, Context};
use crate::report::{DiagCode, LintReport, Severity};

pub(crate) fn run(dr: &DualRailNetlist, ctx: &Context, report: &mut LintReport) {
    report.codes_checked.extend([
        DiagCode::RailPairing,
        DiagCode::CompletionCoverage,
        DiagCode::ProbeInCompletion,
        DiagCode::SpacerUnreachable,
    ]);
    rail_pairing(dr, report);
    completion_coverage(dr, report);
    probe_isolation(dr, report);
    spacer_reachability(dr, ctx, report);
}

fn rail_pairing(dr: &DualRailNetlist, report: &mut LintReport) {
    let nl = dr.netlist();
    let mut check = |group: &str, name: &str, signal: &DualRailSignal| {
        if signal.positive == signal.negative {
            report.push(
                DiagCode::RailPairing,
                Severity::Error,
                format!(
                    "{group} {name:?}: both rails alias net {:?}",
                    nl.net(signal.positive).name(),
                ),
                vec![signal.positive],
                vec![],
            );
            return;
        }
        if let (NetDriver::Cell(p), NetDriver::Cell(n)) = (
            nl.net(signal.positive).driver(),
            nl.net(signal.negative).driver(),
        ) {
            if p == n {
                report.push(
                    DiagCode::RailPairing,
                    Severity::Error,
                    format!(
                        "{group} {name:?}: both rails are driven by the same cell {:?}",
                        nl.cell(p).name(),
                    ),
                    vec![signal.positive, signal.negative],
                    vec![p],
                );
            }
        }
    };
    for (name, signal) in dr.dual_inputs() {
        check("input", name, signal);
    }
    for (name, signal) in dr.dual_outputs() {
        check("output", name, signal);
    }
    for (name, signal) in dr.probes() {
        check("probe", name, signal);
    }
    for (name, wires) in dr.one_of_n_outputs() {
        let mut seen: HashMap<NetId, usize> = HashMap::new();
        for (i, &wire) in wires.iter().enumerate() {
            if let Some(&first) = seen.get(&wire) {
                report.push(
                    DiagCode::RailPairing,
                    Severity::Error,
                    format!(
                        "1-of-{} group {name:?}: wires {first} and {i} alias net {:?}",
                        wires.len(),
                        dr.netlist().net(wire).name(),
                    ),
                    vec![wire],
                    vec![],
                );
            }
            seen.insert(wire, i);
        }
    }
}

fn completion_coverage(dr: &DualRailNetlist, report: &mut LintReport) {
    let Some(done) = dr.done() else {
        report.push(
            DiagCode::CompletionCoverage,
            Severity::Error,
            "no completion network: the circuit declares no `done` signal".to_string(),
            vec![],
            vec![],
        );
        return;
    };
    let (_, cone_nets) = fanin(dr.netlist(), &[done]);
    for net in dr.observed_output_nets() {
        if !cone_nets.contains(&net) {
            report.push(
                DiagCode::CompletionCoverage,
                Severity::Error,
                format!(
                    "observed output net {:?} is not in the fanin cone of `done`: \
                     completion can fire while this output is still settling",
                    dr.netlist().net(net).name(),
                ),
                vec![net],
                vec![],
            );
        }
    }
}

fn probe_isolation(dr: &DualRailNetlist, report: &mut LintReport) {
    let Some(done) = dr.done() else {
        return; // D102 already reported the missing completion network.
    };
    if dr.probes().is_empty() {
        return;
    }
    let nl = dr.netlist();
    let probe_rails: HashMap<NetId, &str> = dr
        .probes()
        .iter()
        .flat_map(|(name, s)| [(s.positive, name.as_str()), (s.negative, name.as_str())])
        .collect();
    // The completion network proper is whatever feeds `done` without
    // also feeding a data output: validity detectors and the C-element
    // tree.  Probe nets may well sit *upstream* of the data cone (a
    // popcount probe feeds the comparator), but they must never be an
    // input of a completion-network cell — a probe that races `done`
    // re-times completion.
    let (done_cells, _) = fanin(nl, &[done]);
    let (data_cells, _) = fanin(nl, &dr.observed_output_nets());
    for &cell_id in done_cells.difference(&data_cells) {
        for &input in nl.cell(cell_id).inputs() {
            if let Some(probe) = probe_rails.get(&input) {
                report.push(
                    DiagCode::ProbeInCompletion,
                    Severity::Error,
                    format!(
                        "probe {probe:?} (net {:?}) feeds completion-network cell {:?}: \
                         probes must not re-time `done`",
                        nl.net(input).name(),
                        nl.cell(cell_id).name(),
                    ),
                    vec![input],
                    vec![cell_id],
                );
            }
        }
    }
}

fn spacer_reachability(dr: &DualRailNetlist, ctx: &Context, report: &mut LintReport) {
    if ctx.topo.is_none() {
        return; // S004 already reported the cycle; no settled state exists.
    }
    let nl = dr.netlist();
    let mut check_net = |net: NetId, expected: bool, what: &str| {
        // Structurally constant rails (tie cells and their cones — e.g.
        // the padded upper bits of a popcount) are DC signals by
        // design: they carry no token and never cycle.  Holding one as
        // an *output* starves completion, but that is T203's finding;
        // return-to-zero only applies to nets that transition.
        if ctx.constant[net.index()].is_some() {
            return;
        }
        match ctx.spacer[net.index()] {
            Some(level) if level == expected => {}
            Some(level) => {
                report.push(
                    DiagCode::SpacerUnreachable,
                    Severity::Error,
                    format!(
                        "{what} {:?} settles to {} under all-spacer inputs but its \
                         spacer level is {} — the circuit does not return to zero",
                        nl.net(net).name(),
                        u8::from(level),
                        u8::from(expected),
                    ),
                    vec![net],
                    vec![],
                );
            }
            None => {
                report.push(
                    DiagCode::SpacerUnreachable,
                    Severity::Error,
                    format!(
                        "{what} {:?} cannot be proven to return to spacer: its settled \
                         value under all-spacer inputs is unknown (history-dependent)",
                        nl.net(net).name(),
                    ),
                    vec![net],
                    vec![],
                );
            }
        }
    };
    for (_, signal) in dr.dual_outputs() {
        let expected = signal.polarity.spacer_level();
        check_net(signal.positive, expected, "output rail");
        check_net(signal.negative, expected, "output rail");
    }
    for (_, wires) in dr.one_of_n_outputs() {
        for &wire in wires {
            // 1-of-n groups use the all-zero spacer convention.
            check_net(wire, false, "1-of-n wire");
        }
    }
    if let Some(done) = dr.done() {
        check_net(done, false, "completion signal");
    }
    for (_, signal) in dr.probes() {
        let expected = signal.polarity.spacer_level();
        check_net(signal.positive, expected, "probe rail");
        check_net(signal.negative, expected, "probe rail");
    }
    // Beyond the observed surface: any net that fails to settle to a
    // unique value under all-spacer inputs makes the return-to-zero
    // phase history-dependent somewhere inside the cone.
    let mut unsettled: Vec<NetId> = Vec::new();
    for (id, net) in nl.nets() {
        let driven = !matches!(net.driver(), NetDriver::None);
        let relevant = driven && (net.fanout() > 0 || nl.port_of_net(id).is_some());
        if relevant && ctx.spacer[id.index()].is_none() {
            unsettled.push(id);
        }
    }
    if !unsettled.is_empty() {
        let names: Vec<&str> = unsettled
            .iter()
            .take(8)
            .map(|&n| nl.net(n).name())
            .collect();
        report.push(
            DiagCode::SpacerUnreachable,
            Severity::Error,
            format!(
                "{} internal net(s) have no provable spacer value (e.g. {}): the \
                 return-to-zero phase is history-dependent",
                unsettled.len(),
                names.join(", "),
            ),
            unsettled,
            vec![],
        );
    }
}
