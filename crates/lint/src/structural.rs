//! Structural family (`S001`–`S005`): netlist-graph invariants that
//! hold for any netlist, single- or dual-rail.

use std::collections::{HashMap, HashSet};

use netlist::graph::topological_order;
use netlist::{CellId, NetDriver, NetId, Netlist, PortDirection};

use crate::report::{DiagCode, LintReport, Severity};

/// Runs the structural checks.  `observed` lists every net that counts
/// as externally observed beyond the output ports (probe rails and the
/// completion signal for a dual-rail netlist; empty otherwise).
pub(crate) fn run(nl: &Netlist, observed: &[NetId], report: &mut LintReport) {
    report.codes_checked.extend([
        DiagCode::UndrivenNet,
        DiagCode::FloatingNet,
        DiagCode::UnreachableCell,
        DiagCode::CombinationalLoop,
        DiagCode::MultiplyDrivenNet,
    ]);

    let output_ports: HashSet<NetId> = nl
        .ports()
        .filter(|(_, p)| p.direction() == PortDirection::Output)
        .map(|(_, p)| p.net())
        .collect();
    let observed: HashSet<NetId> = observed
        .iter()
        .copied()
        .chain(output_ports.iter().copied())
        .collect();

    undriven_and_floating(nl, &observed, report);
    multiply_driven(nl, report);
    unreachable_cells(nl, &observed, report);
    combinational_loops(nl, report);
    fanout_stats(nl, report);
}

fn undriven_and_floating(nl: &Netlist, observed: &HashSet<NetId>, report: &mut LintReport) {
    for (id, net) in nl.nets() {
        let loaded = net.fanout() > 0;
        let is_observed = observed.contains(&id);
        match net.driver() {
            NetDriver::None if loaded || is_observed => {
                report.push(
                    DiagCode::UndrivenNet,
                    Severity::Error,
                    format!(
                        "net {:?} has {} load(s){} but no driver",
                        net.name(),
                        net.fanout(),
                        if is_observed {
                            " and an output port"
                        } else {
                            ""
                        },
                    ),
                    vec![id],
                    vec![],
                );
            }
            NetDriver::None if !loaded => {
                report.push(
                    DiagCode::FloatingNet,
                    Severity::Error,
                    format!("net {:?} is floating: no driver and no loads", net.name()),
                    vec![id],
                    vec![],
                );
            }
            NetDriver::Cell(cell) if !loaded && !is_observed => {
                report.push(
                    DiagCode::FloatingNet,
                    Severity::Error,
                    format!(
                        "net {:?} (driven by cell {:?}) drives nothing and is not \
                         observed by any port, probe or completion signal",
                        net.name(),
                        nl.cell(cell).name(),
                    ),
                    vec![id],
                    vec![cell],
                );
            }
            // Unloaded primary inputs are a programming-model fact of
            // the configured datapath (masked-off features), not a
            // netlist defect.
            _ => {}
        }
    }
}

fn multiply_driven(nl: &Netlist, report: &mut LintReport) {
    let mut drivers: HashMap<NetId, Vec<CellId>> = HashMap::new();
    for (id, cell) in nl.cells() {
        drivers.entry(cell.output()).or_default().push(id);
    }
    for (net_id, net) in nl.nets() {
        let cells = drivers.get(&net_id).map_or(&[][..], Vec::as_slice);
        let contended =
            cells.len() > 1 || (!cells.is_empty() && net.driver() == NetDriver::PrimaryInput);
        if contended {
            report.push(
                DiagCode::MultiplyDrivenNet,
                Severity::Error,
                format!(
                    "net {:?} has {} driving cell(s){}",
                    net.name(),
                    cells.len(),
                    if net.driver() == NetDriver::PrimaryInput {
                        " and is a primary input"
                    } else {
                        ""
                    },
                ),
                vec![net_id],
                cells.to_vec(),
            );
        }
    }
}

fn unreachable_cells(nl: &Netlist, observed: &HashSet<NetId>, report: &mut LintReport) {
    let seeds: Vec<NetId> = observed.iter().copied().collect();
    let (reachable, _) = crate::analyze::fanin(nl, &seeds);
    for (id, cell) in nl.cells() {
        if !reachable.contains(&id) {
            report.push(
                DiagCode::UnreachableCell,
                Severity::Error,
                format!(
                    "cell {:?} ({}) reaches no primary output, probe or completion signal",
                    cell.name(),
                    cell.kind(),
                ),
                vec![cell.output()],
                vec![id],
            );
        }
    }
}

fn combinational_loops(nl: &Netlist, report: &mut LintReport) {
    // Kahn's algorithm over the cell graph with edges *into*
    // state-holding cells cut: whatever cannot be peeled off sits on a
    // combinational cycle.
    let mut indegree: Vec<usize> = nl
        .cells()
        .map(|(_, cell)| {
            if cell.kind().is_sequential() {
                0
            } else {
                cell.inputs()
                    .iter()
                    .filter(|&&n| matches!(nl.net(n).driver(), NetDriver::Cell(_)))
                    .count()
            }
        })
        .collect();
    let mut queue: Vec<CellId> = nl
        .cells()
        .filter(|(id, _)| indegree[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut peeled = 0usize;
    while let Some(cell_id) = queue.pop() {
        peeled += 1;
        let out = nl.cell(cell_id).output();
        for &(load, _pin) in nl.net(out).loads() {
            if nl.cell(load).kind().is_sequential() {
                continue;
            }
            indegree[load.index()] -= 1;
            if indegree[load.index()] == 0 {
                queue.push(load);
            }
        }
    }
    if peeled < nl.cell_count() {
        let stuck: Vec<CellId> = nl
            .cells()
            .filter(|(id, cell)| !cell.kind().is_sequential() && indegree[id.index()] > 0)
            .map(|(id, _)| id)
            .collect();
        let names: Vec<&str> = stuck.iter().take(8).map(|&c| nl.cell(c).name()).collect();
        report.push(
            DiagCode::CombinationalLoop,
            Severity::Error,
            format!(
                "{} cell(s) sit on a combinational feedback loop (e.g. {})",
                stuck.len(),
                names.join(", "),
            ),
            vec![],
            stuck,
        );
    } else if topological_order(nl).is_err() {
        // Acyclic once state-holding inputs are cut, yet the plain
        // order fails: feedback runs through C-elements/DFFs.  That is
        // electrically sanctioned but unsupported by the event engines,
        // which compile a strict topological order.
        report.push(
            DiagCode::CombinationalLoop,
            Severity::Warning,
            "feedback through state-holding cells: electrically sanctioned, but the \
             event engines require an acyclic netlist"
                .to_string(),
            vec![],
            vec![],
        );
    }
}

fn fanout_stats(nl: &Netlist, report: &mut LintReport) {
    let mut histogram: HashMap<usize, usize> = HashMap::new();
    let mut max_fanout = 0usize;
    for (_, net) in nl.nets() {
        *histogram.entry(net.fanout()).or_default() += 1;
        max_fanout = max_fanout.max(net.fanout());
    }
    let mut pairs: Vec<(usize, usize)> = histogram.into_iter().collect();
    pairs.sort_unstable();
    report.stats.cells = nl.cell_count();
    report.stats.nets = nl.net_count();
    report.stats.sequential_cells = nl.cells().filter(|(_, c)| c.kind().is_sequential()).count();
    report.stats.fanout_histogram = pairs;
    report.stats.max_fanout = max_fanout;
}
