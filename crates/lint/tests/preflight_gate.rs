//! End-to-end pre-flight gating: once [`tm_lint::preflight::install`]
//! arms the hook, every `ProtocolDriver` construction in this process
//! rejects broken netlists with `DualRailError::StaticVerification`
//! before a single event is simulated — and still accepts clean ones.
//!
//! This lives in its own test binary: the hook is process-global and
//! first-install-wins, so it must not leak into tests that need to
//! construct drivers for deliberately broken circuits (see
//! `stale_probe.rs`).

use celllib::Library;
use dualrail::{DualRailError, ProtocolDriver};
use tm_lint::mutate::{base_circuit, mutant, MutationKind};

#[test]
fn armed_hook_gates_driver_construction() {
    assert!(
        tm_lint::preflight::install() || tm_lint::preflight::installed(),
        "hook must be installed"
    );
    let library = Library::umc_ll();

    // A clean circuit still constructs.
    let clean = base_circuit(7);
    ProtocolDriver::new(&clean, &library).expect("clean circuit must pass pre-flight");

    // Every mutant is rejected before simulation, with the rendered
    // report naming its diagnostic code.
    for kind in MutationKind::ALL {
        let broken = mutant(kind, 7);
        match ProtocolDriver::new(&broken, &library) {
            Err(DualRailError::StaticVerification { report }) => {
                assert!(
                    report.contains(kind.expected_code().as_str()),
                    "rejection for {} must name {}: {report}",
                    kind.as_str(),
                    kind.expected_code().as_str()
                );
            }
            Err(other) => panic!(
                "mutant {} must fail pre-flight, not {other:?}",
                kind.as_str()
            ),
            Ok(_) => panic!("mutant {} must not construct a driver", kind.as_str()),
        }
    }
}

#[test]
fn verification_is_cached_per_netlist() {
    tm_lint::preflight::install();
    let library = Library::umc_ll();
    let clean = base_circuit(11);
    // Repeated constructions over one netlist hit the fingerprint
    // cache; this is the per-`Arc<EngineProgram>` guarantee the
    // replicated parallel drivers rely on.
    for _ in 0..4 {
        ProtocolDriver::new(&clean, &library).expect("cached verdict must stay Ok");
    }
}
