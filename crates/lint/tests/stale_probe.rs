//! The stale-probe regression, both halves:
//!
//! 1. *statically*, a completion network that observes a probe instead
//!    of the real output is a `D103` + `D102` lint error;
//! 2. *dynamically*, that same circuit really does acknowledge early —
//!    `done` fires while the output is still settling, violating the
//!    `done_latency >= s_to_v_latency` invariant every healthy circuit
//!    in the workspace upholds.
//!
//! This binary must NOT install the pre-flight hook: it constructs a
//! driver for the broken circuit on purpose, which an armed hook would
//! (correctly) refuse.

use celllib::Library;
use dualrail::{DualRailNetlist, ProtocolDriver};
use netlist::CellKind;
use tm_lint::{lint_dual_rail, DiagCode, LintConfig};

/// One dual-rail input feeding a long buffer chain to the output `y`,
/// with a probe tapped right at the head of the chain and a completion
/// "network" that observes only the probe — the worst case: `done`
/// answers after two gate delays while `y` needs the full chain.
fn stale_probe_circuit() -> DualRailNetlist {
    let mut dr = DualRailNetlist::new("stale_probe");
    let a = dr.add_dual_input("a");
    let head = dr.buffer("head", a).expect("buffer");
    dr.declare_probe("early", head);
    let mut slow = head;
    for i in 0..12 {
        slow = dr.buffer(&format!("slow{i}"), slow).expect("buffer");
    }
    dr.add_dual_output("y", slow);
    let done = dr
        .netlist_mut()
        .add_cell(
            "cd_probe_only",
            CellKind::Or2,
            &[head.positive, head.negative],
        )
        .expect("validity detector");
    dr.set_done(done);
    dr
}

#[test]
fn probe_observing_completion_is_a_lint_error() {
    let dr = stale_probe_circuit();
    let report = lint_dual_rail(&dr, &Library::umc_ll(), &LintConfig::default());
    assert!(
        report.has_code(DiagCode::ProbeInCompletion),
        "completion fed by a probe must raise D103:\n{}",
        report.render_text()
    );
    assert!(
        report.has_code(DiagCode::CompletionCoverage),
        "the unobserved output must raise D102:\n{}",
        report.render_text()
    );
    assert!(tm_lint::verify_static(&dr).is_err());
}

#[test]
fn probe_observing_completion_acknowledges_early_at_runtime() {
    assert!(
        !tm_lint::preflight::installed(),
        "this binary must run without the pre-flight hook"
    );
    let dr = stale_probe_circuit();
    let library = Library::umc_ll();
    let mut driver = ProtocolDriver::new(&dr, &library).expect("driver");
    let result = driver.apply_operand(&[true]).expect("cycle");
    let done = result.done_latency_ps.expect("circuit declares completion");
    assert!(
        done < result.s_to_v_latency_ps,
        "the static hazard is real: done at {done} ps must beat the output \
         settling at {} ps",
        result.s_to_v_latency_ps
    );
}

/// The control: observe the *output* instead and the invariant holds.
#[test]
fn output_observing_completion_acknowledges_late_at_runtime() {
    let mut dr = DualRailNetlist::new("healthy_probe");
    let a = dr.add_dual_input("a");
    let head = dr.buffer("head", a).expect("buffer");
    dr.declare_probe("early", head);
    let mut slow = head;
    for i in 0..12 {
        slow = dr.buffer(&format!("slow{i}"), slow).expect("buffer");
    }
    dr.add_dual_output("y", slow);
    dualrail::ReducedCompletion::insert(&mut dr).expect("completion");

    let report = lint_dual_rail(&dr, &Library::umc_ll(), &LintConfig::default());
    assert!(
        report.is_clean(),
        "the healthy variant must lint clean:\n{}",
        report.render_text()
    );

    let library = Library::umc_ll();
    let mut driver = ProtocolDriver::new(&dr, &library).expect("driver");
    let result = driver.apply_operand(&[true]).expect("cycle");
    let done = result.done_latency_ps.expect("completion declared");
    assert!(
        done >= result.s_to_v_latency_ps,
        "with completion on the output, done at {done} ps must not beat \
         settling at {} ps",
        result.s_to_v_latency_ps
    );
}
