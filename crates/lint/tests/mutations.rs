//! The mutation-coverage property: the unmutated base circuit lints
//! clean, and every [`MutationKind`] is flagged with exactly the
//! diagnostic code it advertises — across seeds, so the checks do not
//! depend on which input rail the mutation happens to target.

use celllib::Library;
use proptest::prelude::*;
use tm_lint::mutate::{base_circuit, mutant, MutationKind};
use tm_lint::{lint_dual_rail, LintConfig, Severity};

fn lint(dr: &dualrail::DualRailNetlist) -> tm_lint::LintReport {
    lint_dual_rail(dr, &Library::umc_ll(), &LintConfig::default())
}

#[test]
fn base_circuit_is_clean() {
    for seed in 0..6 {
        let report = lint(&base_circuit(seed));
        assert!(
            report.is_clean(),
            "base circuit (seed {seed}) must lint clean:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn every_mutation_kind_is_detected() {
    for kind in MutationKind::ALL {
        let dr = mutant(kind, 1);
        let report = lint(&dr);
        assert!(
            report.has_code(kind.expected_code()),
            "mutant {} must raise {}:\n{}",
            kind.as_str(),
            kind.expected_code().as_str(),
            report.render_text()
        );
        assert!(
            report.error_count() > 0,
            "mutant {} must carry at least one error-severity finding",
            kind.as_str()
        );
    }
}

#[test]
fn detected_findings_are_errors_not_warnings() {
    // The pre-flight hook only rejects on error severity, so every
    // advertised code must surface at that severity for its mutant.
    for kind in MutationKind::ALL {
        let report = lint(&mutant(kind, 2));
        let code = kind.expected_code();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == code && d.severity == Severity::Error),
            "mutant {} must raise {} at error severity:\n{}",
            kind.as_str(),
            code.as_str(),
            report.render_text()
        );
    }
}

#[test]
fn verify_static_rejects_every_mutant() {
    for kind in MutationKind::ALL {
        let dr = mutant(kind, 3);
        let verdict = tm_lint::verify_static(&dr);
        let report = verdict.expect_err("mutant must fail pre-flight verification");
        assert!(
            report.contains(kind.expected_code().as_str()),
            "rendered rejection for {} must name {}: {report}",
            kind.as_str(),
            kind.expected_code().as_str()
        );
    }
    tm_lint::verify_static(&base_circuit(0)).expect("clean base must pass pre-flight");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mutation_detection_is_seed_independent(seed in 0u64..1024, idx in 0usize..12) {
        let kind = MutationKind::ALL[idx];
        let report = lint(&mutant(kind, seed));
        prop_assert!(
            report.has_code(kind.expected_code()),
            "mutant {} seed {seed} must raise {}:\n{}",
            kind.as_str(),
            kind.expected_code().as_str(),
            report.render_text()
        );
        prop_assert!(lint(&base_circuit(seed)).is_clean());
    }
}
