//! Arrival traces: the open-loop load generator.
//!
//! A [`Trace`] is a nondecreasing sequence of request arrival times on
//! the **deterministic virtual clock** (nanoseconds).  Generators cover
//! the arrival patterns a saturation study needs:
//!
//! * [`Trace::uniform`] — evenly spaced arrivals (the deterministic
//!   control);
//! * [`Trace::poisson`] — exponential inter-arrival gaps, the classic
//!   open-loop model of independent clients (seeded, reproducible);
//! * [`Trace::bursty`] — Poisson-spaced *bursts* of simultaneous
//!   arrivals, stressing the admission queue and the lanes-full flush
//!   rule;
//! * [`Trace::ramp`] — a deterministic linear rate sweep from a warm-up
//!   rate into overload, walking the server across its saturation knee
//!   within a single trace.
//!
//! Randomised generators draw from the workspace's deterministic
//! [`rand`] stub, so a `(generator, parameters, seed)` triple always
//! reproduces the same trace — the virtual-clock determinism contract
//! starts here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One nanosecond-denominated virtual-clock timestamp.
pub type VirtualNs = u64;

/// A nondecreasing sequence of request arrival times (virtual ns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    arrivals: Vec<VirtualNs>,
}

impl Trace {
    /// Wraps explicit arrival times.
    ///
    /// # Panics
    ///
    /// Panics if the times are not nondecreasing.
    #[must_use]
    pub fn from_arrivals(arrivals: Vec<VirtualNs>) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be nondecreasing"
        );
        Self { arrivals }
    }

    /// `n` arrivals evenly spaced for an offered load of `qps` requests
    /// per second of virtual time, starting at one gap.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not finite and positive.
    #[must_use]
    pub fn uniform(n: usize, qps: f64) -> Self {
        let gap = gap_ns(qps);
        Self {
            arrivals: (1..=n as u64).map(|k| k * gap).collect(),
        }
    }

    /// `n` arrivals with independent exponential inter-arrival gaps at
    /// mean rate `qps` (a Poisson process), reproducible from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not finite and positive.
    #[must_use]
    pub fn poisson(n: usize, qps: f64, seed: u64) -> Self {
        let mean_gap = gap_ns(qps) as f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        let arrivals = (0..n)
            .map(|_| {
                now += exponential_ns(&mut rng, mean_gap);
                now
            })
            .collect();
        Self { arrivals }
    }

    /// `n` arrivals in bursts of `burst` simultaneous requests; burst
    /// epochs form a Poisson process whose rate keeps the *overall*
    /// offered load at `qps`.  The final burst may be partial.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero or `qps` is not finite and positive.
    #[must_use]
    pub fn bursty(n: usize, burst: usize, qps: f64, seed: u64) -> Self {
        assert!(burst > 0, "burst size must be at least 1");
        let mean_epoch_gap = gap_ns(qps) as f64 * burst as f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        let mut arrivals = Vec::with_capacity(n);
        while arrivals.len() < n {
            now += exponential_ns(&mut rng, mean_epoch_gap);
            for _ in 0..burst.min(n - arrivals.len()) {
                arrivals.push(now);
            }
        }
        Self { arrivals }
    }

    /// `n` arrivals whose instantaneous rate ramps linearly from
    /// `start_qps` to `end_qps` — fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics if either rate is not finite and positive.
    #[must_use]
    pub fn ramp(n: usize, start_qps: f64, end_qps: f64) -> Self {
        let (start_gap, end_gap) = (gap_ns(start_qps) as f64, gap_ns(end_qps) as f64);
        let mut now = 0f64;
        let arrivals = (0..n)
            .map(|k| {
                let progress = if n > 1 {
                    k as f64 / (n - 1) as f64
                } else {
                    0.0
                };
                now += start_gap + (end_gap - start_gap) * progress;
                now.round() as u64
            })
            .collect();
        Self { arrivals }
    }

    /// The arrival times, nondecreasing, in virtual nanoseconds.
    #[must_use]
    pub fn arrivals(&self) -> &[VirtualNs] {
        &self.arrivals
    }

    /// Number of requests in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace carries no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The offered load in requests per second of virtual time,
    /// measured over the trace's own arrival window (0.0 for traces
    /// shorter than two requests or with a zero-length window).
    #[must_use]
    pub fn offered_qps(&self) -> f64 {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(&first), Some(&last)) if last > first => {
                (self.len() - 1) as f64 * 1e9 / (last - first) as f64
            }
            _ => 0.0,
        }
    }
}

/// Mean inter-arrival gap in whole nanoseconds for an offered rate.
fn gap_ns(qps: f64) -> u64 {
    assert!(
        qps.is_finite() && qps > 0.0,
        "offered rate must be finite and positive, got {qps}"
    );
    (1e9 / qps).round().max(1.0) as u64
}

/// One exponential inter-arrival gap with the given mean, ≥ 1 ns so the
/// virtual clock always advances between Poisson events.
fn exponential_ns(rng: &mut StdRng, mean_ns: f64) -> u64 {
    let unit: f64 = rng.gen_range(0.0..1.0);
    (-(1.0 - unit).ln() * mean_ns).round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spacing_and_offered_rate() {
        let trace = Trace::uniform(5, 1e6); // 1 request per µs
        assert_eq!(trace.arrivals(), &[1000, 2000, 3000, 4000, 5000]);
        assert!((trace.offered_qps() - 1e6).abs() / 1e6 < 1e-9);
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
    }

    #[test]
    fn poisson_is_reproducible_and_roughly_calibrated() {
        let a = Trace::poisson(2000, 1e6, 42);
        let b = Trace::poisson(2000, 1e6, 42);
        assert_eq!(a, b);
        assert_ne!(a, Trace::poisson(2000, 1e6, 43));
        assert!(a.arrivals().windows(2).all(|w| w[0] <= w[1]));
        // The measured rate should be within 10 % of the requested rate.
        let measured = a.offered_qps();
        assert!(
            (measured - 1e6).abs() / 1e6 < 0.1,
            "poisson rate {measured} too far from 1e6"
        );
    }

    #[test]
    fn bursts_share_timestamps_and_keep_overall_rate() {
        let trace = Trace::bursty(1000, 10, 1e6, 7);
        assert_eq!(trace.len(), 1000);
        // Every burst is 10 identical timestamps.
        for chunk in trace.arrivals().chunks(10) {
            assert!(chunk.iter().all(|&t| t == chunk[0]));
        }
        // Distinct epochs strictly increase.
        let epochs: Vec<u64> = trace.arrivals().chunks(10).map(|c| c[0]).collect();
        assert!(epochs.windows(2).all(|w| w[0] < w[1]));
        let measured = trace.offered_qps();
        assert!(
            (measured - 1e6).abs() / 1e6 < 0.2,
            "bursty rate {measured} too far from 1e6"
        );
        // A partial final burst still lands exactly n arrivals.
        assert_eq!(Trace::bursty(25, 10, 1e6, 7).len(), 25);
    }

    #[test]
    fn ramp_is_deterministic_and_accelerates() {
        let trace = Trace::ramp(100, 1e5, 1e6);
        assert_eq!(trace, Trace::ramp(100, 1e5, 1e6));
        let gaps: Vec<u64> = trace.arrivals().windows(2).map(|w| w[1] - w[0]).collect();
        // Gaps shrink (rate grows) monotonically along a linear ramp.
        assert!(gaps.windows(2).all(|w| w[1] <= w[0]));
        assert!(gaps[0] > *gaps.last().unwrap());
    }

    #[test]
    fn explicit_arrivals_and_degenerate_rates() {
        let trace = Trace::from_arrivals(vec![5, 5, 9]);
        assert_eq!(trace.len(), 3);
        assert!(Trace::from_arrivals(vec![]).is_empty());
        assert_eq!(Trace::from_arrivals(vec![7]).offered_qps(), 0.0);
        assert_eq!(Trace::from_arrivals(vec![3, 3]).offered_qps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_arrivals_are_rejected() {
        let _ = Trace::from_arrivals(vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_is_rejected() {
        let _ = Trace::uniform(1, 0.0);
    }
}
