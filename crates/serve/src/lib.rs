//! Micro-batching inference serving runtime with admission control and
//! tail-latency telemetry.
//!
//! PRs 1–4 built four inference engines — 64-lane batch, its sharded
//! parallel variant, the sharded event-driven golden model and the
//! dual-rail four-phase datapath — but all of them consume *offline
//! workloads*.  This crate turns them into a **service**: individual
//! requests arrive on a deterministic virtual clock, a dynamic
//! micro-batcher coalesces them (flush when 64 lanes fill **or** a
//! max-wait deadline expires, amortising the batch path without
//! unbounded queueing delay), admission control bounds the queue
//! (block or shed, sheds counted), and one long-lived service worker
//! thread ([`exec::with_service`]) runs the pluggable [`Backend`].
//! Telemetry splits every request's **queueing delay** from its
//! **service time** and reports p50/p95/p99 as exact order statistics
//! ([`gatesim::LatencyReport::percentile`]) — the queueing-system
//! counterpart of the paper's data-dependent hardware latency
//! distributions.
//!
//! * [`Trace`] — the open-loop load generator (uniform / Poisson /
//!   bursty / ramp arrivals); [`Server::run_closed`] drives a closed
//!   loop instead.
//! * [`MicroBatcher`] + [`AdmissionPolicy`] — the deterministic batcher
//!   state machine (see `batcher` module docs).
//! * [`Backend`] — one trait, seven adapters ([`BatchBackend`],
//!   [`ParallelBatchBackend`], [`EventDrivenBackend`],
//!   [`DualRailBackend`], the bit-sliced [`EventSlicedBackend`] and
//!   [`DualRailSlicedBackend`], and the wavefront-pipelined
//!   [`DualRailPipelinedBackend`]).
//! * [`Server`] — the virtual-clock event loop; see `server` module
//!   docs for the determinism contract.  **Every served outcome is
//!   verified against the workload's golden outcome** before a report
//!   is returned.
//! * [`ServeReport`] / [`ServeSummary`] — per-request records and the
//!   condensed saturation-sweep figures.
//! * [`CircuitBreaker`] + [`ServeConfig::deadline_ns`] — fault
//!   tolerance: a failing primary backend is retried, then demoted to a
//!   golden fallback after repeated failures ([`BackendFaultStats`]
//!   lands in [`ServeReport::backend_faults`]); requests whose
//!   per-request deadline expires while queued are shed at flush time
//!   instead of being dispatched stale.
//!
//! # Example
//!
//! ```
//! use datapath::{BatchGoldenModel, DatapathConfig, InferenceWorkload};
//! use tm_serve::{BatchBackend, ServeConfig, Server, ServiceModel, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = DatapathConfig::new(6, 4)?;
//! let model = BatchGoldenModel::generate(&config)?;
//! let workload = InferenceWorkload::random(&config, 32, 0.7, 42)?;
//!
//! let backend = BatchBackend::new(&model, workload.masks().clone())?;
//! let mut server = Server::new(
//!     backend,
//!     &workload,
//!     ServeConfig {
//!         max_wait_ns: 5_000, // flush a partial batch after 5 µs
//!         // A fixed cost model makes the whole report deterministic.
//!         service_model: ServiceModel::Fixed { batch_ns: 200, per_request_ns: 20 },
//!         ..ServeConfig::default()
//!     },
//! )?;
//!
//! // 500 Poisson arrivals at 2M requests/s of virtual time.
//! let report = server.run(&Trace::poisson(500, 2e6, 7))?;
//! assert_eq!(report.served_count() + report.shed_count(), 500);
//! assert_eq!(report.shed_count(), 0); // below saturation nothing sheds
//! let summary = report.summary();
//! assert!(summary.queue_p50_ns <= summary.queue_p99_ns);
//! assert!(summary.achieved_qps > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod batcher;
pub mod error;
pub mod obs;
pub mod server;
pub mod telemetry;
pub mod trace;

pub use backend::{
    Backend, BatchBackend, CircuitBreaker, DualRailBackend, DualRailPipelinedBackend,
    DualRailSlicedBackend, EventDrivenBackend, EventSlicedBackend, FlakyBackend,
    ParallelBatchBackend,
};
pub use batcher::{AdmissionPolicy, MicroBatcher, PendingRequest};
pub use error::ServeError;
pub use obs::TraceRecorder;
pub use server::{ServeConfig, Server, ServiceModel};
pub use telemetry::{
    BackendFaultStats, BatchRecord, ServeReport, ServeSummary, ServedRecord, ShedRecord,
};
pub use trace::{Trace, VirtualNs};
