//! Request-lifecycle tracing for the serving runtime.
//!
//! A [`TraceRecorder`] turns one serving session into a
//! [Chrome trace event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! JSON document on the **virtual clock**: every request becomes a
//! span from arrival to completion, every micro-batch a span from
//! flush to service completion, the pending-queue depth a sampled
//! counter track, and circuit-breaker state changes instant markers.
//! Because the serving runtime's clock is virtual and deterministic
//! (see [`crate::server`]), a fixed-service-model trace is
//! **byte-identical run to run** — trace files diff cleanly across
//! commits.
//!
//! The recorder is passed to [`crate::Server::run_traced`] /
//! [`crate::Server::run_closed_traced`]; the plain entry points carry
//! no tracing state and pay no tracing cost.
//!
//! ```
//! use tm_obs::json_is_well_formed;
//! use tm_serve::TraceRecorder;
//!
//! let mut recorder = TraceRecorder::new("edge-server");
//! recorder.arrival(0, 0, 1_000);
//! recorder.queue_depth(1_000, 1);
//! recorder.batch(0, 2_000, 1, 500);
//! recorder.request_served(0, 0, 1_000, 1_000, 500, 0);
//! let json = recorder.to_json();
//! assert!(json_is_well_formed(&json).is_ok());
//! ```

use tm_obs::ChromeTrace;

/// Virtual thread lane carrying per-request lifecycle events.
const TID_REQUESTS: u32 = 1;
/// Virtual thread lane carrying micro-batch dispatch spans and
/// breaker-state markers.
const TID_SERVER: u32 = 2;

/// Records one serving session's request lifecycle as a Chrome trace.
///
/// All timestamps are **virtual nanoseconds** ([`crate::VirtualNs`]);
/// the exported `ts`/`dur` fields are microseconds with three exact
/// decimals, so no precision is lost.
#[derive(Debug)]
pub struct TraceRecorder {
    trace: ChromeTrace,
    breaker_open: Option<bool>,
}

impl TraceRecorder {
    /// Creates an empty recorder; `process` names the trace's process
    /// row in the viewer.
    #[must_use]
    pub fn new(process: &str) -> Self {
        Self {
            trace: ChromeTrace::new(process),
            breaker_open: None,
        }
    }

    /// Number of events recorded so far (metadata included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether nothing beyond the process metadata has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.len() <= 1
    }

    /// A request arrived at `arrival_ns` (instant marker on the
    /// request lane; its full span is emitted at completion).
    pub fn arrival(&mut self, id: usize, sample: usize, arrival_ns: u64) {
        let _ = sample;
        self.trace
            .instant(&format!("arrive {id}"), "request", arrival_ns, TID_REQUESTS);
    }

    /// A request was shed (admission control or deadline expiry).
    pub fn shed(&mut self, id: usize, at_ns: u64, reason: &str) {
        self.trace.instant(
            &format!("shed {id} ({reason})"),
            "shed",
            at_ns,
            TID_REQUESTS,
        );
    }

    /// A request was served: span from arrival to completion with its
    /// queueing/service split and batch ordinal attached.
    pub fn request_served(
        &mut self,
        id: usize,
        sample: usize,
        arrival_ns: u64,
        queue_ns: u64,
        service_ns: u64,
        batch: usize,
    ) {
        self.trace.complete(
            &format!("request {id}"),
            "request",
            arrival_ns,
            queue_ns.saturating_add(service_ns),
            TID_REQUESTS,
            &[
                ("sample", sample.to_string()),
                ("queue_ns", queue_ns.to_string()),
                ("service_ns", service_ns.to_string()),
                ("batch", batch.to_string()),
            ],
        );
    }

    /// A micro-batch was dispatched at `flush_ns` and completed
    /// `service_ns` later.
    pub fn batch(&mut self, index: usize, flush_ns: u64, size: usize, service_ns: u64) {
        self.trace.complete(
            &format!("batch {index}"),
            "dispatch",
            flush_ns,
            service_ns,
            TID_SERVER,
            &[("size", size.to_string())],
        );
    }

    /// Samples the pending-queue depth at `at_ns`.
    pub fn queue_depth(&mut self, at_ns: u64, depth: usize) {
        self.trace
            .counter("queue_depth", at_ns, &[("pending", depth as u64)]);
    }

    /// Notes the circuit-breaker state observed after a batch; emits a
    /// transition marker only when the state actually changed.
    pub fn breaker_state(&mut self, at_ns: u64, open: bool) {
        if self.breaker_open == Some(open) {
            return;
        }
        let known_before = self.breaker_open.is_some();
        self.breaker_open = Some(open);
        // The initial closed state is the implied baseline, not an
        // event; the first *observation* only records if it is open.
        if !known_before && !open {
            return;
        }
        let name = if open {
            "breaker opens"
        } else {
            "breaker closes"
        };
        self.trace.instant(name, "breaker", at_ns, TID_SERVER);
    }

    /// Exports the Chrome trace JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.trace.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_trace_is_well_formed_and_deterministic() {
        let build = || {
            let mut recorder = TraceRecorder::new("serve-test");
            recorder.arrival(0, 0, 100);
            recorder.queue_depth(100, 1);
            recorder.arrival(1, 1, 150);
            recorder.queue_depth(150, 2);
            recorder.batch(0, 200, 2, 1_000);
            recorder.request_served(0, 0, 100, 100, 1_000, 0);
            recorder.request_served(1, 1, 150, 50, 1_000, 0);
            recorder.queue_depth(200, 0);
            recorder.breaker_state(1_200, false); // baseline: no event
            recorder.breaker_state(2_400, true); // transition: event
            recorder.breaker_state(3_600, true); // unchanged: no event
            recorder.to_json()
        };
        let json = build();
        tm_obs::json_is_well_formed(&json).expect("trace JSON must parse");
        assert!(json.contains("breaker opens"));
        assert_eq!(json.matches("breaker").count(), 2); // cat + name once
        assert_eq!(json, build(), "virtual-clock traces are deterministic");
    }

    #[test]
    fn initial_open_observation_is_recorded() {
        let mut recorder = TraceRecorder::new("serve-test");
        recorder.breaker_state(10, true);
        assert!(recorder.to_json().contains("breaker opens"));
    }
}
