//! The dynamic micro-batcher: a deterministic state machine over the
//! virtual clock.
//!
//! The batcher owns the server's **bounded pending queue** (the
//! admission-control queue) and decides, purely from virtual-clock
//! timestamps, when the next micro-batch leaves it:
//!
//! * **lanes-full flush** — as soon as `fill_threshold()` requests are
//!   pending *and* the service worker is free, a batch of up to
//!   `max_batch` departs.  The threshold is
//!   `min(max_batch, max(capacity, 1))`: a queue that cannot grow any
//!   further (`capacity < max_batch`) flushes as soon as the server is
//!   idle — waiting longer could never improve amortisation;
//! * **deadline flush** — otherwise the oldest pending request waits at
//!   most `max_wait_ns` past its *arrival* (not its admission: a
//!   request admitted late under the block policy does not get its
//!   deadline extended), after which whatever is pending departs.
//!
//! Both rules yield a single closed form,
//! [`MicroBatcher::next_flush_ns`], which the server's event loop
//! compares against the next arrival (ties flush first — a request
//! arriving at the exact flush instant misses that batch).  Because the
//! flush time is a pure function of the pending timestamps, the server's
//! free time and the configuration, batch composition is a deterministic
//! function of the trace whenever service times are deterministic (see
//! the crate docs for the full determinism contract).
//!
//! Admission ([`MicroBatcher::can_admit`]) is equally mechanical: a
//! request is admitted while the queue has a free slot; a zero-capacity
//! queue admits only the degenerate "server idle, queue empty" case,
//! where the request departs immediately as a singleton batch.  What
//! happens to a rejected request — count-and-drop or wait for space — is
//! the [`AdmissionPolicy`], applied by the server loop.

use std::collections::VecDeque;

use crate::trace::VirtualNs;

/// What the server does with a request that finds the pending queue
/// full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Drop the request and count it in telemetry (load shedding): the
    /// client gets an immediate rejection instead of unbounded queueing
    /// delay.
    Shed,
    /// Make the client wait: the request is admitted at the earliest
    /// virtual time a slot frees, and its queueing delay keeps accruing
    /// from its original arrival (closed-loop push-back).
    Block,
}

/// One admitted request waiting in (or departing from) the pending
/// queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingRequest {
    /// Serial request id (issue order across the whole session).
    pub id: usize,
    /// Workload sample this request replays.
    pub sample: usize,
    /// Closed-loop client that issued the request (0 for open loop).
    pub client: u32,
    /// When the request arrived (virtual ns) — queueing delay and the
    /// flush deadline are measured from here.
    pub arrival_ns: VirtualNs,
    /// When the request entered the pending queue (equals `arrival_ns`
    /// except for requests that waited under [`AdmissionPolicy::Block`]).
    pub admit_ns: VirtualNs,
}

/// The bounded pending queue plus the flush rule.  See the [module
/// documentation](self) for the state machine.
#[derive(Clone, Debug)]
pub struct MicroBatcher {
    capacity: usize,
    max_batch: usize,
    max_wait_ns: u64,
    pending: VecDeque<PendingRequest>,
}

impl MicroBatcher {
    /// Creates an empty batcher.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (the server validates this before
    /// construction).
    #[must_use]
    pub fn new(capacity: usize, max_batch: usize, max_wait_ns: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        Self {
            capacity,
            max_batch,
            max_wait_ns,
            pending: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Number of requests currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The pending count at which a flush stops waiting for more
    /// requests: `min(max_batch, max(capacity, 1))`.
    #[must_use]
    pub fn fill_threshold(&self) -> usize {
        self.max_batch.min(self.capacity.max(1))
    }

    /// Whether a request arriving at `now_ns` may enter the queue while
    /// the service worker frees at `server_free_ns`.
    ///
    /// A free slot always admits.  A zero-capacity queue additionally
    /// admits the "queue empty and server idle" case: the request never
    /// waits — it departs at once as a singleton batch.
    #[must_use]
    pub fn can_admit(&self, now_ns: VirtualNs, server_free_ns: VirtualNs) -> bool {
        self.pending.len() < self.capacity || (self.pending.is_empty() && server_free_ns <= now_ns)
    }

    /// Admits a request (the caller has checked [`MicroBatcher::can_admit`]
    /// or is admitting a blocked request at a freed slot).
    ///
    /// # Panics
    ///
    /// Panics if admissions go out of virtual-clock order (a server-loop
    /// bug).
    pub fn admit(&mut self, request: PendingRequest) {
        if let Some(last) = self.pending.back() {
            assert!(
                last.admit_ns <= request.admit_ns,
                "admissions must be chronological"
            );
        }
        self.pending.push_back(request);
    }

    /// The virtual time of the next flush given the service worker
    /// frees at `server_free_ns`, or `None` while nothing is pending.
    ///
    /// With at least [`MicroBatcher::fill_threshold`] requests pending
    /// the flush happens the moment both the threshold-filling request
    /// had been admitted and the server is free; otherwise it happens at
    /// the oldest request's deadline (`arrival + max_wait`), again no
    /// earlier than the server being free.
    #[must_use]
    pub fn next_flush_ns(&self, server_free_ns: VirtualNs) -> Option<VirtualNs> {
        let oldest = self.pending.front()?;
        let fill = self.fill_threshold();
        Some(if self.pending.len() >= fill {
            server_free_ns.max(self.pending[fill - 1].admit_ns)
        } else {
            server_free_ns.max(oldest.arrival_ns.saturating_add(self.max_wait_ns))
        })
    }

    /// Removes and returns the next micro-batch: the oldest
    /// `min(pending, max_batch)` requests, in admission order.
    ///
    /// # Panics
    ///
    /// Panics if nothing is pending.
    pub fn take_batch(&mut self) -> Vec<PendingRequest> {
        assert!(!self.pending.is_empty(), "no pending requests to flush");
        let size = self.pending.len().min(self.max_batch);
        self.pending.drain(..size).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: usize, arrival_ns: u64) -> PendingRequest {
        PendingRequest {
            id,
            sample: id,
            client: 0,
            arrival_ns,
            admit_ns: arrival_ns,
        }
    }

    #[test]
    fn lanes_full_flush_fires_when_threshold_fills_and_server_is_free() {
        let mut batcher = MicroBatcher::new(128, 4, 1_000);
        assert_eq!(batcher.fill_threshold(), 4);
        assert!(batcher.next_flush_ns(0).is_none());
        for id in 0..3 {
            batcher.admit(request(id, 10 + id as u64));
        }
        // Below the threshold: deadline flush anchored on the oldest arrival.
        assert_eq!(batcher.next_flush_ns(0), Some(10 + 1_000));
        batcher.admit(request(3, 40));
        // Threshold filled at t=40; flush there if the server is free...
        assert_eq!(batcher.next_flush_ns(0), Some(40));
        // ...or as soon as it frees.
        assert_eq!(batcher.next_flush_ns(500), Some(500));
        let batch = batcher.take_batch();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].id, 0);
        assert!(batcher.is_empty());
    }

    #[test]
    fn capacity_below_max_batch_flushes_a_full_queue_without_waiting() {
        // capacity 2 < max_batch 64: the queue can never fill 64 lanes,
        // so a full queue flushes as soon as the server is free instead
        // of waiting out the deadline.
        let mut batcher = MicroBatcher::new(2, 64, 1_000_000);
        assert_eq!(batcher.fill_threshold(), 2);
        batcher.admit(request(0, 5));
        batcher.admit(request(1, 6));
        assert_eq!(batcher.next_flush_ns(0), Some(6));
        assert_eq!(batcher.take_batch().len(), 2);
    }

    #[test]
    fn zero_capacity_admits_only_the_idle_singleton_case() {
        let batcher = MicroBatcher::new(0, 64, 1_000);
        assert_eq!(batcher.fill_threshold(), 1);
        // Server idle, queue empty: direct dispatch allowed.
        assert!(batcher.can_admit(10, 5));
        // Server busy: nothing may wait in a zero-capacity queue.
        assert!(!batcher.can_admit(10, 11));
        let mut batcher = batcher;
        batcher.admit(request(0, 10));
        // The admitted request departs immediately as a singleton.
        assert_eq!(batcher.next_flush_ns(5), Some(10));
        assert_eq!(batcher.take_batch().len(), 1);
    }

    #[test]
    fn deadline_is_anchored_on_arrival_not_admission() {
        let mut batcher = MicroBatcher::new(8, 64, 1_000);
        // A blocked request admitted 700 ns after it arrived...
        batcher.admit(PendingRequest {
            id: 0,
            sample: 0,
            client: 0,
            arrival_ns: 100,
            admit_ns: 800,
        });
        // ...still flushes at arrival + max_wait, not admit + max_wait.
        assert_eq!(batcher.next_flush_ns(0), Some(1_100));
        // A deadline already past flushes the moment the server frees.
        assert_eq!(batcher.next_flush_ns(2_000), Some(2_000));
    }

    #[test]
    fn oversize_pending_drains_in_max_batch_chunks() {
        let mut batcher = MicroBatcher::new(100, 4, 10);
        for id in 0..10 {
            batcher.admit(request(id, id as u64));
        }
        assert_eq!(batcher.take_batch().len(), 4);
        assert_eq!(batcher.take_batch().len(), 4);
        let tail = batcher.take_batch();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].id, 9);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn out_of_order_admissions_panic() {
        let mut batcher = MicroBatcher::new(8, 4, 10);
        batcher.admit(request(0, 50));
        batcher.admit(request(1, 40));
    }
}
