//! Per-request serving telemetry: queueing delay split from service
//! time, with exact-order-statistic tail percentiles.
//!
//! Every served request records **where its end-to-end time went**:
//!
//! * `queue_ns` — arrival → service start (admission wait + batching
//!   wait + head-of-line blocking behind earlier batches);
//! * `service_ns` — the duration of the backend call that carried the
//!   request's micro-batch (every request of a batch shares it).
//!
//! Summaries reuse [`gatesim::LatencyReport`] — the same
//! order-statistic machinery that reports the paper's per-operand
//! hardware latencies — rather than a second histogram implementation.
//! One unit caveat: `LatencyReport`'s accessors are named for the
//! simulator's picoseconds, but the type is unit-agnostic; **all
//! serving reports are nanosecond-denominated** (`percentile`, `min`,
//! `max` etc. return virtual-clock nanoseconds).

use std::fmt;

use datapath::InferenceOutcome;
use gatesim::LatencyReport;

use crate::trace::VirtualNs;

/// One served request's accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct ServedRecord {
    /// Serial request id (issue order).
    pub id: usize,
    /// Workload sample the request replayed.
    pub sample: usize,
    /// Closed-loop client that issued the request (0 for open loop).
    pub client: u32,
    /// Arrival time on the virtual clock (ns).
    pub arrival_ns: VirtualNs,
    /// Arrival → service start (ns): the tail-latency component the
    /// micro-batcher and admission control govern.
    pub queue_ns: u64,
    /// Duration of the backend call that served this request's batch
    /// (ns).
    pub service_ns: u64,
    /// Index into [`ServeReport::batches`] of the carrying micro-batch.
    pub batch: usize,
    /// The decoded outcome (verified against the workload's golden
    /// outcome before the report is returned).
    pub outcome: InferenceOutcome,
}

impl ServedRecord {
    /// Arrival → completion (ns).
    #[must_use]
    pub fn sojourn_ns(&self) -> u64 {
        self.queue_ns + self.service_ns
    }
}

/// One dispatched micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRecord {
    /// When the batch left the pending queue and started service
    /// (virtual ns).
    pub flush_ns: VirtualNs,
    /// Requests in the batch (1 ..= `max_batch`).
    pub size: usize,
    /// Backend call duration (ns).
    pub service_ns: u64,
}

/// One request dropped by the shed admission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShedRecord {
    /// Serial request id.
    pub id: usize,
    /// Workload sample the request would have replayed.
    pub sample: usize,
    /// When the request arrived and was turned away (virtual ns).
    pub arrival_ns: VirtualNs,
}

/// Fault-handling counters a self-healing backend wrapper (the
/// circuit breaker, [`crate::CircuitBreaker`]) accumulated over a
/// serving session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendFaultStats {
    /// Failed primary-backend calls (each attempt counts, including
    /// retries of the same batch).
    pub primary_errors: u64,
    /// Retry attempts issued against the primary after a failure.
    pub retries: u64,
    /// Micro-batches answered by the golden fallback backend.
    pub fallback_batches: u64,
    /// Requests answered by the golden fallback backend.
    pub fallback_requests: u64,
    /// Whether the breaker ended the session open (primary demoted,
    /// all traffic on the fallback).
    pub breaker_open: bool,
}

/// Everything a serving session measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Served requests in service order.
    pub served: Vec<ServedRecord>,
    /// Requests dropped by admission control, in arrival order.
    pub shed: Vec<ShedRecord>,
    /// Requests dropped at flush time because their per-request
    /// deadline ([`crate::ServeConfig::deadline_ns`]) expired before
    /// service could start, in flush order.  Distinct from `shed`:
    /// these were admitted but timed out waiting.
    pub deadline_expired: Vec<ShedRecord>,
    /// Dispatched micro-batches in flush order.
    pub batches: Vec<BatchRecord>,
    /// Virtual time of the last completion (0 if nothing was served).
    pub makespan_ns: VirtualNs,
    /// Offered load of the driving trace in requests per second of
    /// virtual time (0.0 when not meaningful, e.g. closed-loop runs).
    pub offered_qps: f64,
    /// Fault-handling counters, when the backend is a self-healing
    /// wrapper ([`crate::CircuitBreaker`]); `None` for plain backends.
    pub backend_faults: Option<BackendFaultStats>,
}

impl ServeReport {
    /// Number of requests served.
    #[must_use]
    pub fn served_count(&self) -> usize {
        self.served.len()
    }

    /// Number of requests dropped by admission control.
    #[must_use]
    pub fn shed_count(&self) -> usize {
        self.shed.len()
    }

    /// Number of admitted requests dropped because their deadline
    /// expired while queued.
    #[must_use]
    pub fn deadline_expired_count(&self) -> usize {
        self.deadline_expired.len()
    }

    /// Served requests per second of virtual time (served count over
    /// the makespan; 0.0 for an empty session).
    #[must_use]
    pub fn achieved_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.served.len() as f64 * 1e9 / self.makespan_ns as f64
        }
    }

    /// Mean micro-batch size (0.0 for an empty session) — how well the
    /// batcher amortised the 64-lane path.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            0.0
        } else {
            self.served.len() as f64 / self.batches.len() as f64
        }
    }

    /// Queueing delays (ns) of every served request, in service order,
    /// as a [`LatencyReport`] (nanosecond-denominated; see the [module
    /// documentation](self)).
    #[must_use]
    pub fn queueing(&self) -> LatencyReport {
        LatencyReport::from_latencies(self.served.iter().map(|r| r.queue_ns as f64).collect())
    }

    /// Service times (ns) of every served request, in service order.
    #[must_use]
    pub fn service(&self) -> LatencyReport {
        LatencyReport::from_latencies(self.served.iter().map(|r| r.service_ns as f64).collect())
    }

    /// End-to-end sojourn times (ns) of every served request, in
    /// service order.
    #[must_use]
    pub fn sojourn(&self) -> LatencyReport {
        LatencyReport::from_latencies(self.served.iter().map(|r| r.sojourn_ns() as f64).collect())
    }

    /// The condensed figures a saturation sweep records.
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        // One sort per component via the batch accessor.
        let queue = self.queueing().percentiles(&[50.0, 95.0, 99.0]);
        let service = self.service().percentiles(&[50.0, 95.0, 99.0]);
        let faults = self.backend_faults.unwrap_or_default();
        ServeSummary {
            requests: self.served.len() + self.shed.len() + self.deadline_expired.len(),
            served: self.served.len(),
            shed: self.shed.len(),
            deadline_expired: self.deadline_expired.len(),
            retries: faults.retries,
            fallback_batches: faults.fallback_batches,
            batches: self.batches.len(),
            mean_batch_size: self.mean_batch_size(),
            makespan_ns: self.makespan_ns,
            offered_qps: self.offered_qps,
            achieved_qps: self.achieved_qps(),
            queue_p50_ns: queue[0],
            queue_p95_ns: queue[1],
            queue_p99_ns: queue[2],
            service_p50_ns: service[0],
            service_p95_ns: service[1],
            service_p99_ns: service[2],
        }
    }
}

/// Condensed session figures: offered vs achieved load, shed count and
/// the queueing/service tail percentiles (all exact order statistics
/// via [`LatencyReport::percentile`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSummary {
    /// Requests the load generator issued (served + shed).
    pub requests: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests dropped by admission control.
    pub shed: usize,
    /// Admitted requests dropped because their deadline expired while
    /// queued.
    pub deadline_expired: usize,
    /// Retry attempts the circuit breaker issued against the primary
    /// backend (0 for plain backends).
    pub retries: u64,
    /// Micro-batches the circuit breaker answered via the golden
    /// fallback backend (0 for plain backends).
    pub fallback_batches: u64,
    /// Micro-batches dispatched.
    pub batches: usize,
    /// Mean requests per micro-batch.
    pub mean_batch_size: f64,
    /// Virtual time of the last completion (ns).
    pub makespan_ns: u64,
    /// Offered load (requests/s of virtual time; 0.0 if not meaningful).
    pub offered_qps: f64,
    /// Achieved goodput (served requests/s of virtual time).
    pub achieved_qps: f64,
    /// Median queueing delay (ns).
    pub queue_p50_ns: f64,
    /// 95th-percentile queueing delay (ns).
    pub queue_p95_ns: f64,
    /// 99th-percentile queueing delay (ns).
    pub queue_p99_ns: f64,
    /// Median service time (ns).
    pub service_p50_ns: f64,
    /// 95th-percentile service time (ns).
    pub service_p95_ns: f64,
    /// 99th-percentile service time (ns).
    pub service_p99_ns: f64,
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served {}/{} (shed {}, expired {}) in {} batches (mean {:.1}); offered {:.0} qps, \
             achieved {:.0} qps; queue p50/p95/p99 {:.0}/{:.0}/{:.0} ns; \
             service p50/p95/p99 {:.0}/{:.0}/{:.0} ns",
            self.served,
            self.requests,
            self.shed,
            self.deadline_expired,
            self.batches,
            self.mean_batch_size,
            self.offered_qps,
            self.achieved_qps,
            self.queue_p50_ns,
            self.queue_p95_ns,
            self.queue_p99_ns,
            self.service_p50_ns,
            self.service_p95_ns,
            self.service_p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datapath::ComparatorDecision;

    fn outcome() -> InferenceOutcome {
        InferenceOutcome {
            positive_votes: 1,
            negative_votes: 0,
            decision: ComparatorDecision::Greater,
            in_class: true,
        }
    }

    fn served(id: usize, arrival: u64, queue: u64, service: u64, batch: usize) -> ServedRecord {
        ServedRecord {
            id,
            sample: id,
            client: 0,
            arrival_ns: arrival,
            queue_ns: queue,
            service_ns: service,
            batch,
            outcome: outcome(),
        }
    }

    #[test]
    fn summary_splits_queueing_from_service() {
        let report = ServeReport {
            served: vec![
                served(0, 0, 100, 50, 0),
                served(1, 10, 90, 50, 0),
                served(2, 200, 0, 30, 1),
            ],
            shed: vec![ShedRecord {
                id: 3,
                sample: 0,
                arrival_ns: 20,
            }],
            deadline_expired: vec![],
            batches: vec![
                BatchRecord {
                    flush_ns: 100,
                    size: 2,
                    service_ns: 50,
                },
                BatchRecord {
                    flush_ns: 200,
                    size: 1,
                    service_ns: 30,
                },
            ],
            makespan_ns: 230,
            offered_qps: 1e7,
            backend_faults: None,
        };
        assert_eq!(report.served_count(), 3);
        assert_eq!(report.shed_count(), 1);
        assert_eq!(report.served[0].sojourn_ns(), 150);
        assert!((report.mean_batch_size() - 1.5).abs() < 1e-12);
        let summary = report.summary();
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.shed, 1);
        // Exact order statistics over {0, 90, 100} and {30, 50, 50}.
        assert_eq!(summary.queue_p50_ns, 90.0);
        assert_eq!(summary.queue_p99_ns, 100.0);
        assert_eq!(summary.service_p50_ns, 50.0);
        assert_eq!(summary.service_p99_ns, 50.0);
        assert_eq!(report.sojourn().max_ps(), 150.0);
        // 3 served over 230 ns of virtual time.
        assert!((summary.achieved_qps - 3.0 * 1e9 / 230.0).abs() < 1e-6);
        let text = summary.to_string();
        assert!(text.contains("shed 1"));
        assert!(text.contains("p50/p95/p99"));
    }

    #[test]
    fn empty_report_is_all_zeros() {
        let report = ServeReport {
            served: vec![],
            shed: vec![],
            deadline_expired: vec![],
            batches: vec![],
            makespan_ns: 0,
            offered_qps: 0.0,
            backend_faults: None,
        };
        assert_eq!(report.achieved_qps(), 0.0);
        assert_eq!(report.mean_batch_size(), 0.0);
        assert_eq!(report.summary().queue_p99_ns, 0.0);
    }
}
