//! The pluggable inference backend behind the service worker.
//!
//! A [`Backend`] turns one micro-batch of borrowed feature slices into
//! one [`InferenceOutcome`] per request, in request order.  The trait is
//! deliberately tiny — the serving runtime owns batching, admission and
//! telemetry; the backend only computes — and it is implemented for
//! every inference engine of the workspace:
//!
//! | adapter | engine | character |
//! |---|---|---|
//! | [`BatchBackend`] | [`datapath::BatchInference`] | 64-lane bit-parallel, single thread |
//! | [`ParallelBatchBackend`] | [`datapath::ParallelBatchInference`] | 64-lane passes sharded across workers |
//! | [`EventDrivenBackend`] | [`datapath::EventDrivenInference`] | per-operand event-driven simulation |
//! | [`DualRailBackend`] | [`datapath::DualRailInference`] | four-phase dual-rail handshakes |
//! | [`EventSlicedBackend`] | [`datapath::EventDrivenInference`] (sliced) | 64-lane bit-sliced event simulation |
//! | [`DualRailSlicedBackend`] | [`datapath::DualRailInference`] (sliced) | 64-lane bit-sliced four-phase handshakes |
//! | [`DualRailPipelinedBackend`] | [`datapath::DualRailInference`] (pipelined) | wavefront-pipelined four-phase token trains |
//!
//! The exclude masks (the trained model) bind at adapter construction:
//! a server serves one model, and requests carry only features.
//!
//! Every adapter serves **bit-identical outcomes to its offline engine**
//! — the adapters forward to the same `infer_batch`/`run_features`
//! entry points the benchmarks call, so "served" vs "offline" can never
//! diverge except through a serving-layer bug (which the server's
//! golden verification would catch).

use celllib::Library;
use datapath::{
    BatchGoldenModel, BatchInference, DualRailDatapath, DualRailInference, EventDrivenInference,
    InferenceOutcome, ParallelBatchInference,
};
use dualrail::PipelineConfig;
use tsetlin::ExcludeMasks;

use crate::error::ServeError;
use crate::telemetry::BackendFaultStats;

/// A pluggable inference engine serving one micro-batch at a time.
pub trait Backend {
    /// Short stable name used in telemetry rows (`serve_<name>_qps`).
    fn name(&self) -> &'static str;

    /// Largest micro-batch this backend can absorb in one call.  The
    /// server clamps its configured `max_batch` to this.
    fn max_batch(&self) -> usize {
        netlist::LANES
    }

    /// Serves one micro-batch of borrowed feature slices, returning one
    /// outcome per request in request order.
    ///
    /// # Errors
    ///
    /// Propagates engine failures (width mismatches, decode failures,
    /// protocol violations).
    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError>;

    /// Fault-handling counters, for self-healing wrappers such as
    /// [`CircuitBreaker`].  Plain backends return `None`; the server
    /// copies whatever this returns into
    /// [`crate::ServeReport::backend_faults`] after the session drains.
    fn fault_stats(&self) -> Option<BackendFaultStats> {
        None
    }
}

impl<T: Backend + ?Sized> Backend for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn max_batch(&self) -> usize {
        (**self).max_batch()
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        (**self).serve(features)
    }

    fn fault_stats(&self) -> Option<BackendFaultStats> {
        (**self).fault_stats()
    }
}

/// Serving adapter over the single-threaded 64-lane batch engine.
#[derive(Debug)]
pub struct BatchBackend<'a> {
    inner: BatchInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> BatchBackend<'a> {
    /// Binds the batch engine to a trained model's exclude masks.
    ///
    /// # Errors
    ///
    /// Propagates netlist-flattening failures and mask/model mismatches.
    pub fn new(model: &'a BatchGoldenModel, masks: ExcludeMasks) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: BatchInference::new(model)?,
            masks,
        })
    }
}

impl Backend for BatchBackend<'_> {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.infer_batch(&self.masks, features)?)
    }
}

/// Serving adapter over the multi-threaded 64-lane batch engine.
#[derive(Debug)]
pub struct ParallelBatchBackend<'a> {
    inner: ParallelBatchInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> ParallelBatchBackend<'a> {
    /// Binds the sharded batch engine (with `threads` workers, clamped
    /// to at least 1) to a trained model's exclude masks.
    ///
    /// # Errors
    ///
    /// Propagates netlist-flattening failures and mask/model mismatches.
    pub fn new(
        model: &'a BatchGoldenModel,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: ParallelBatchInference::new(model, threads)?,
            masks,
        })
    }
}

impl Backend for ParallelBatchBackend<'_> {
    fn name(&self) -> &'static str {
        "parallel_batch"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.run_features(&self.masks, features)?)
    }
}

/// Serving adapter over the sharded event-driven golden-model engine
/// (each request settles through one return-to-zero cycle; the
/// simulation's per-operand latency is an engine-internal figure — the
/// *serving* report measures queueing and wall-clock service time).
#[derive(Debug)]
pub struct EventDrivenBackend<'a> {
    inner: EventDrivenInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> EventDrivenBackend<'a> {
    /// Compiles the golden model for event-driven serving with delays
    /// from `library`, sharded across `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates mask/model mismatches.
    pub fn new(
        model: &'a BatchGoldenModel,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: EventDrivenInference::new(model, library, threads),
            masks,
        })
    }
}

impl Backend for EventDrivenBackend<'_> {
    fn name(&self) -> &'static str {
        "event_driven"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.run_features(&self.masks, features)?.outcomes)
    }
}

/// Serving adapter over the sharded dual-rail four-phase engine — every
/// request is a complete handshake cycle on the paper's actual datapath.
#[derive(Debug)]
pub struct DualRailBackend<'a> {
    inner: DualRailInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> DualRailBackend<'a> {
    /// Compiles the dual-rail datapath for four-phase serving with
    /// delays from `library`, sharded across `threads` workers under the
    /// reset-phase contract.
    ///
    /// # Errors
    ///
    /// Propagates driver-construction failures (e.g. a circuit that
    /// fails to settle during initialisation).
    pub fn new(
        datapath: &'a DualRailDatapath,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        Ok(Self {
            inner: DualRailInference::new(datapath, library, threads)?,
            masks,
        })
    }
}

impl Backend for DualRailBackend<'_> {
    fn name(&self) -> &'static str {
        "dual_rail"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.run_features(&self.masks, features)?.outcomes)
    }
}

/// Serving adapter over the bit-sliced event-driven engine: a micro
/// batch is one 64-lane word, so the whole batch settles through a
/// single return-to-zero cycle of merged events — outcomes
/// bit-identical to [`EventDrivenBackend`] at a fraction of the cost.
#[derive(Debug)]
pub struct EventSlicedBackend<'a> {
    inner: EventDrivenInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> EventSlicedBackend<'a> {
    /// Compiles the golden model for bit-sliced event-driven serving
    /// with delays from `library`, words sharded across `threads`
    /// workers.
    ///
    /// # Errors
    ///
    /// Propagates mask/model mismatches.
    pub fn new(
        model: &'a BatchGoldenModel,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: EventDrivenInference::new(model, library, threads),
            masks,
        })
    }
}

impl Backend for EventSlicedBackend<'_> {
    fn name(&self) -> &'static str {
        "event_sliced"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self
            .inner
            .run_features_sliced(&self.masks, features)?
            .outcomes)
    }
}

/// Serving adapter over the bit-sliced dual-rail engine: a micro-batch
/// is one word of four-phase handshake lanes on the paper's actual
/// datapath — outcomes bit-identical to [`DualRailBackend`].
#[derive(Debug)]
pub struct DualRailSlicedBackend<'a> {
    inner: DualRailInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> DualRailSlicedBackend<'a> {
    /// Compiles the dual-rail datapath for bit-sliced four-phase
    /// serving with delays from `library`, words sharded across
    /// `threads` workers under the reset-phase contract.
    ///
    /// # Errors
    ///
    /// Propagates driver-construction failures (e.g. a circuit that
    /// fails to settle during initialisation).
    pub fn new(
        datapath: &'a DualRailDatapath,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        Ok(Self {
            inner: DualRailInference::new(datapath, library, threads)?,
            masks,
        })
    }
}

impl Backend for DualRailSlicedBackend<'_> {
    fn name(&self) -> &'static str {
        "dualrail_sliced"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self
            .inner
            .run_features_sliced(&self.masks, features)?
            .outcomes)
    }
}

/// Serving adapter over the wavefront-pipelined dual-rail engine
/// ([`dualrail::PipelinedProtocolDriver`]): a micro-batch is one token
/// train, with each operand injected as soon as the input stage
/// acknowledges its predecessor's spacer instead of after the global
/// `done` round-trip — outcomes bit-identical to [`DualRailBackend`],
/// simulated cycle time well below the serial two-settle handshake.
#[derive(Debug)]
pub struct DualRailPipelinedBackend<'a> {
    inner: DualRailInference<'a>,
    masks: ExcludeMasks,
    config: PipelineConfig,
}

impl<'a> DualRailPipelinedBackend<'a> {
    /// Compiles the dual-rail datapath for wavefront-pipelined serving
    /// with delays from `library`, token trains sharded across
    /// `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates driver-construction failures (e.g. a circuit that
    /// fails to settle during initialisation).
    pub fn new(
        datapath: &'a DualRailDatapath,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
        config: PipelineConfig,
    ) -> Result<Self, ServeError> {
        Ok(Self {
            inner: DualRailInference::new(datapath, library, threads)?,
            masks,
            config,
        })
    }
}

impl Backend for DualRailPipelinedBackend<'_> {
    fn name(&self) -> &'static str {
        "dualrail_pipelined"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        let (run, _report) =
            self.inner
                .run_features_pipelined(&self.masks, features, self.config)?;
        Ok(run.outcomes)
    }
}

/// A self-healing backend wrapper: retries a failing primary, and after
/// `failure_threshold` consecutive failed batches demotes it
/// permanently ("opens the breaker") in favour of a golden fallback
/// backend.
///
/// Semantics per micro-batch:
///
/// 1. While the breaker is closed, the primary gets the batch, plus up
///    to `max_retries` immediate retries on failure (the simulators are
///    deterministic, but a faulted engine can recover between cycles —
///    e.g. an SEU pulse that expires — so retrying is not futile).
/// 2. If all attempts fail, the **fallback answers the batch** — no
///    request is ever lost to a primary fault — and the
///    consecutive-failure counter increments.
/// 3. At `failure_threshold` consecutive failed batches the breaker
///    opens: the primary is demoted for the rest of the session and
///    every later batch goes straight to the fallback.  A successful
///    primary batch resets the counter.
///
/// The fallback is typically the always-correct [`BatchBackend`] golden
/// engine, so the server's per-request golden verification still passes
/// for failed-over traffic.  Counters are reported through
/// [`Backend::fault_stats`] into [`crate::ServeReport::backend_faults`].
#[derive(Debug)]
pub struct CircuitBreaker<P, F> {
    primary: P,
    fallback: F,
    failure_threshold: usize,
    max_retries: usize,
    consecutive_failures: usize,
    open: bool,
    stats: BackendFaultStats,
}

impl<P: Backend, F: Backend> CircuitBreaker<P, F> {
    /// Wraps `primary` with a breaker that opens after
    /// `failure_threshold` consecutive failed batches (clamped to at
    /// least 1), allowing `max_retries` immediate retries per batch.
    pub fn new(primary: P, fallback: F, failure_threshold: usize, max_retries: usize) -> Self {
        Self {
            primary,
            fallback,
            failure_threshold: failure_threshold.max(1),
            max_retries,
            consecutive_failures: 0,
            open: false,
            stats: BackendFaultStats::default(),
        }
    }

    /// Whether the breaker has opened (primary demoted for the rest of
    /// the session).
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> BackendFaultStats {
        self.stats
    }

    fn serve_fallback(
        &mut self,
        features: &[&[bool]],
    ) -> Result<Vec<InferenceOutcome>, ServeError> {
        self.stats.fallback_batches += 1;
        self.stats.fallback_requests += features.len() as u64;
        self.fallback.serve(features)
    }
}

impl<P: Backend, F: Backend> Backend for CircuitBreaker<P, F> {
    fn name(&self) -> &'static str {
        "circuit_breaker"
    }

    fn max_batch(&self) -> usize {
        self.primary.max_batch().min(self.fallback.max_batch())
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        if self.open {
            return self.serve_fallback(features);
        }
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            match self.primary.serve(features) {
                Ok(outcomes) => {
                    self.consecutive_failures = 0;
                    return Ok(outcomes);
                }
                Err(_) => self.stats.primary_errors += 1,
            }
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.failure_threshold {
            self.open = true;
            self.stats.breaker_open = true;
        }
        self.serve_fallback(features)
    }

    fn fault_stats(&self) -> Option<BackendFaultStats> {
        Some(self.stats)
    }
}

/// A deterministic fault-injection wrapper: fails its first
/// `failing_calls` serve calls with a backend error, then delegates to
/// the wrapped backend.  Built for exercising [`CircuitBreaker`] and the
/// fault campaign — the error is typed as a [`datapath::DatapathError`]
/// decode failure, the same class a genuinely faulted engine raises.
#[derive(Debug)]
pub struct FlakyBackend<B> {
    inner: B,
    failing_calls: usize,
    calls: usize,
}

impl<B: Backend> FlakyBackend<B> {
    /// Wraps `inner` so its first `failing_calls` serve calls fail.
    pub fn new(inner: B, failing_calls: usize) -> Self {
        Self {
            inner,
            failing_calls,
            calls: 0,
        }
    }
}

impl<B: Backend> Backend for FlakyBackend<B> {
    fn name(&self) -> &'static str {
        "flaky"
    }

    fn max_batch(&self) -> usize {
        self.inner.max_batch()
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        self.calls += 1;
        if self.calls <= self.failing_calls {
            return Err(ServeError::Backend(datapath::DatapathError::DecodeFailure(
                format!(
                    "injected fault: serve call {} of {} configured failures",
                    self.calls, self.failing_calls
                ),
            )));
        }
        self.inner.serve(features)
    }
}

/// Rejects masks that do not match the model configuration at adapter
/// construction, so a misconfigured server fails before accepting load.
fn check_masks(model: &BatchGoldenModel, masks: &ExcludeMasks) -> Result<(), ServeError> {
    let config = model.config();
    if masks.feature_count() != config.features()
        || masks.clauses_per_polarity() != config.clauses_per_polarity()
    {
        return Err(ServeError::InvalidConfig {
            name: "masks",
            reason: format!(
                "exclude masks ({} features, {} clauses/polarity) do not match the model \
                 ({} features, {} clauses/polarity)",
                masks.feature_count(),
                masks.clauses_per_polarity(),
                config.features(),
                config.clauses_per_polarity()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datapath::{DatapathConfig, InferenceWorkload};

    #[test]
    fn adapters_serve_golden_outcomes() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 10, 0.7, 3).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let mut batch = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        assert_eq!(batch.name(), "batch");
        assert_eq!(batch.max_batch(), netlist::LANES);
        assert_eq!(&batch.serve(&features).unwrap(), workload.expected());

        let mut parallel = ParallelBatchBackend::new(&model, workload.masks().clone(), 2).unwrap();
        assert_eq!(parallel.name(), "parallel_batch");
        assert_eq!(&parallel.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn event_and_dual_rail_adapters_serve_golden_outcomes() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 5, 0.6, 9).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let mut event =
            EventDrivenBackend::new(&model, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(event.name(), "event_driven");
        assert_eq!(&event.serve(&features).unwrap(), workload.expected());

        let datapath = DualRailDatapath::generate(&config).unwrap();
        let mut dual =
            DualRailBackend::new(&datapath, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(dual.name(), "dual_rail");
        assert_eq!(&dual.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn sliced_adapters_serve_golden_outcomes() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 5, 0.6, 9).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let mut event =
            EventSlicedBackend::new(&model, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(event.name(), "event_sliced");
        assert_eq!(event.max_batch(), netlist::LANES);
        assert_eq!(&event.serve(&features).unwrap(), workload.expected());

        let datapath = DualRailDatapath::generate(&config).unwrap();
        let mut dual =
            DualRailSlicedBackend::new(&datapath, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(dual.name(), "dualrail_sliced");
        assert_eq!(&dual.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn pipelined_adapter_serves_golden_outcomes() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 7, 0.6, 9).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let datapath = DualRailDatapath::generate(&config).unwrap();
        let mut pipelined = DualRailPipelinedBackend::new(
            &datapath,
            &library,
            workload.masks().clone(),
            2,
            PipelineConfig::default(),
        )
        .unwrap();
        assert_eq!(pipelined.name(), "dualrail_pipelined");
        assert_eq!(pipelined.max_batch(), netlist::LANES);
        assert_eq!(&pipelined.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn circuit_breaker_retries_then_fails_over_then_opens() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 6, 0.7, 3).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        // Primary fails its first 5 calls; one retry per batch means
        // batch 1 consumes calls 1-2, batch 2 consumes calls 3-4, batch
        // 3 consumes call 5 and then succeeds on the retry... but the
        // breaker (threshold 2) opens after batch 2, so batch 3 never
        // reaches the primary.
        let primary = FlakyBackend::new(
            BatchBackend::new(&model, workload.masks().clone()).unwrap(),
            5,
        );
        let fallback = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut breaker = CircuitBreaker::new(primary, fallback, 2, 1);
        assert_eq!(breaker.name(), "circuit_breaker");
        assert_eq!(breaker.max_batch(), netlist::LANES);

        for batch in 0..3 {
            let outcomes = breaker.serve(&features).unwrap();
            assert_eq!(&outcomes, workload.expected(), "batch {batch}");
        }
        assert!(breaker.is_open());
        let stats = breaker.fault_stats().unwrap();
        assert_eq!(
            stats,
            BackendFaultStats {
                primary_errors: 4,
                retries: 2,
                fallback_batches: 3,
                fallback_requests: 18,
                breaker_open: true,
            }
        );
    }

    #[test]
    fn circuit_breaker_resets_counter_on_success() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 4, 0.7, 3).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        // One failing call, no retries: batch 1 fails over, batch 2
        // succeeds on the primary and resets the streak — the breaker
        // (threshold 2) never opens.
        let primary = FlakyBackend::new(
            BatchBackend::new(&model, workload.masks().clone()).unwrap(),
            1,
        );
        let fallback = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut breaker = CircuitBreaker::new(primary, fallback, 2, 0);
        for _ in 0..3 {
            assert_eq!(&breaker.serve(&features).unwrap(), workload.expected());
        }
        assert!(!breaker.is_open());
        let stats = breaker.stats();
        assert_eq!(stats.primary_errors, 1);
        assert_eq!(stats.fallback_batches, 1);
        assert!(!stats.breaker_open);

        // Plain backends report no fault stats.
        let plain = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        assert_eq!(plain.fault_stats(), None);
    }

    #[test]
    fn mismatched_masks_fail_at_construction() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let other = DatapathConfig::new(6, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let wrong = InferenceWorkload::random(&other, 1, 0.5, 1).unwrap();
        assert!(matches!(
            BatchBackend::new(&model, wrong.masks().clone()),
            Err(ServeError::InvalidConfig { name: "masks", .. })
        ));
    }
}
