//! The pluggable inference backend behind the service worker.
//!
//! A [`Backend`] turns one micro-batch of borrowed feature slices into
//! one [`InferenceOutcome`] per request, in request order.  The trait is
//! deliberately tiny — the serving runtime owns batching, admission and
//! telemetry; the backend only computes — and it is implemented for
//! every inference engine of the workspace:
//!
//! | adapter | engine | character |
//! |---|---|---|
//! | [`BatchBackend`] | [`datapath::BatchInference`] | 64-lane bit-parallel, single thread |
//! | [`ParallelBatchBackend`] | [`datapath::ParallelBatchInference`] | 64-lane passes sharded across workers |
//! | [`EventDrivenBackend`] | [`datapath::EventDrivenInference`] | per-operand event-driven simulation |
//! | [`DualRailBackend`] | [`datapath::DualRailInference`] | four-phase dual-rail handshakes |
//! | [`EventSlicedBackend`] | [`datapath::EventDrivenInference`] (sliced) | 64-lane bit-sliced event simulation |
//! | [`DualRailSlicedBackend`] | [`datapath::DualRailInference`] (sliced) | 64-lane bit-sliced four-phase handshakes |
//!
//! The exclude masks (the trained model) bind at adapter construction:
//! a server serves one model, and requests carry only features.
//!
//! Every adapter serves **bit-identical outcomes to its offline engine**
//! — the adapters forward to the same `infer_batch`/`run_features`
//! entry points the benchmarks call, so "served" vs "offline" can never
//! diverge except through a serving-layer bug (which the server's
//! golden verification would catch).

use celllib::Library;
use datapath::{
    BatchGoldenModel, BatchInference, DualRailDatapath, DualRailInference, EventDrivenInference,
    InferenceOutcome, ParallelBatchInference,
};
use tsetlin::ExcludeMasks;

use crate::error::ServeError;

/// A pluggable inference engine serving one micro-batch at a time.
pub trait Backend {
    /// Short stable name used in telemetry rows (`serve_<name>_qps`).
    fn name(&self) -> &'static str;

    /// Largest micro-batch this backend can absorb in one call.  The
    /// server clamps its configured `max_batch` to this.
    fn max_batch(&self) -> usize {
        netlist::LANES
    }

    /// Serves one micro-batch of borrowed feature slices, returning one
    /// outcome per request in request order.
    ///
    /// # Errors
    ///
    /// Propagates engine failures (width mismatches, decode failures,
    /// protocol violations).
    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError>;
}

impl<T: Backend + ?Sized> Backend for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn max_batch(&self) -> usize {
        (**self).max_batch()
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        (**self).serve(features)
    }
}

/// Serving adapter over the single-threaded 64-lane batch engine.
#[derive(Debug)]
pub struct BatchBackend<'a> {
    inner: BatchInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> BatchBackend<'a> {
    /// Binds the batch engine to a trained model's exclude masks.
    ///
    /// # Errors
    ///
    /// Propagates netlist-flattening failures and mask/model mismatches.
    pub fn new(model: &'a BatchGoldenModel, masks: ExcludeMasks) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: BatchInference::new(model)?,
            masks,
        })
    }
}

impl Backend for BatchBackend<'_> {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.infer_batch(&self.masks, features)?)
    }
}

/// Serving adapter over the multi-threaded 64-lane batch engine.
#[derive(Debug)]
pub struct ParallelBatchBackend<'a> {
    inner: ParallelBatchInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> ParallelBatchBackend<'a> {
    /// Binds the sharded batch engine (with `threads` workers, clamped
    /// to at least 1) to a trained model's exclude masks.
    ///
    /// # Errors
    ///
    /// Propagates netlist-flattening failures and mask/model mismatches.
    pub fn new(
        model: &'a BatchGoldenModel,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: ParallelBatchInference::new(model, threads)?,
            masks,
        })
    }
}

impl Backend for ParallelBatchBackend<'_> {
    fn name(&self) -> &'static str {
        "parallel_batch"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.run_features(&self.masks, features)?)
    }
}

/// Serving adapter over the sharded event-driven golden-model engine
/// (each request settles through one return-to-zero cycle; the
/// simulation's per-operand latency is an engine-internal figure — the
/// *serving* report measures queueing and wall-clock service time).
#[derive(Debug)]
pub struct EventDrivenBackend<'a> {
    inner: EventDrivenInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> EventDrivenBackend<'a> {
    /// Compiles the golden model for event-driven serving with delays
    /// from `library`, sharded across `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates mask/model mismatches.
    pub fn new(
        model: &'a BatchGoldenModel,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: EventDrivenInference::new(model, library, threads),
            masks,
        })
    }
}

impl Backend for EventDrivenBackend<'_> {
    fn name(&self) -> &'static str {
        "event_driven"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.run_features(&self.masks, features)?.outcomes)
    }
}

/// Serving adapter over the sharded dual-rail four-phase engine — every
/// request is a complete handshake cycle on the paper's actual datapath.
#[derive(Debug)]
pub struct DualRailBackend<'a> {
    inner: DualRailInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> DualRailBackend<'a> {
    /// Compiles the dual-rail datapath for four-phase serving with
    /// delays from `library`, sharded across `threads` workers under the
    /// reset-phase contract.
    ///
    /// # Errors
    ///
    /// Propagates driver-construction failures (e.g. a circuit that
    /// fails to settle during initialisation).
    pub fn new(
        datapath: &'a DualRailDatapath,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        Ok(Self {
            inner: DualRailInference::new(datapath, library, threads)?,
            masks,
        })
    }
}

impl Backend for DualRailBackend<'_> {
    fn name(&self) -> &'static str {
        "dual_rail"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self.inner.run_features(&self.masks, features)?.outcomes)
    }
}

/// Serving adapter over the bit-sliced event-driven engine: a micro
/// batch is one 64-lane word, so the whole batch settles through a
/// single return-to-zero cycle of merged events — outcomes
/// bit-identical to [`EventDrivenBackend`] at a fraction of the cost.
#[derive(Debug)]
pub struct EventSlicedBackend<'a> {
    inner: EventDrivenInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> EventSlicedBackend<'a> {
    /// Compiles the golden model for bit-sliced event-driven serving
    /// with delays from `library`, words sharded across `threads`
    /// workers.
    ///
    /// # Errors
    ///
    /// Propagates mask/model mismatches.
    pub fn new(
        model: &'a BatchGoldenModel,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        check_masks(model, &masks)?;
        Ok(Self {
            inner: EventDrivenInference::new(model, library, threads),
            masks,
        })
    }
}

impl Backend for EventSlicedBackend<'_> {
    fn name(&self) -> &'static str {
        "event_sliced"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self
            .inner
            .run_features_sliced(&self.masks, features)?
            .outcomes)
    }
}

/// Serving adapter over the bit-sliced dual-rail engine: a micro-batch
/// is one word of four-phase handshake lanes on the paper's actual
/// datapath — outcomes bit-identical to [`DualRailBackend`].
#[derive(Debug)]
pub struct DualRailSlicedBackend<'a> {
    inner: DualRailInference<'a>,
    masks: ExcludeMasks,
}

impl<'a> DualRailSlicedBackend<'a> {
    /// Compiles the dual-rail datapath for bit-sliced four-phase
    /// serving with delays from `library`, words sharded across
    /// `threads` workers under the reset-phase contract.
    ///
    /// # Errors
    ///
    /// Propagates driver-construction failures (e.g. a circuit that
    /// fails to settle during initialisation).
    pub fn new(
        datapath: &'a DualRailDatapath,
        library: &Library,
        masks: ExcludeMasks,
        threads: usize,
    ) -> Result<Self, ServeError> {
        Ok(Self {
            inner: DualRailInference::new(datapath, library, threads)?,
            masks,
        })
    }
}

impl Backend for DualRailSlicedBackend<'_> {
    fn name(&self) -> &'static str {
        "dualrail_sliced"
    }

    fn serve(&mut self, features: &[&[bool]]) -> Result<Vec<InferenceOutcome>, ServeError> {
        Ok(self
            .inner
            .run_features_sliced(&self.masks, features)?
            .outcomes)
    }
}

/// Rejects masks that do not match the model configuration at adapter
/// construction, so a misconfigured server fails before accepting load.
fn check_masks(model: &BatchGoldenModel, masks: &ExcludeMasks) -> Result<(), ServeError> {
    let config = model.config();
    if masks.feature_count() != config.features()
        || masks.clauses_per_polarity() != config.clauses_per_polarity()
    {
        return Err(ServeError::InvalidConfig {
            name: "masks",
            reason: format!(
                "exclude masks ({} features, {} clauses/polarity) do not match the model \
                 ({} features, {} clauses/polarity)",
                masks.feature_count(),
                masks.clauses_per_polarity(),
                config.features(),
                config.clauses_per_polarity()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datapath::{DatapathConfig, InferenceWorkload};

    #[test]
    fn adapters_serve_golden_outcomes() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 10, 0.7, 3).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let mut batch = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        assert_eq!(batch.name(), "batch");
        assert_eq!(batch.max_batch(), netlist::LANES);
        assert_eq!(&batch.serve(&features).unwrap(), workload.expected());

        let mut parallel = ParallelBatchBackend::new(&model, workload.masks().clone(), 2).unwrap();
        assert_eq!(parallel.name(), "parallel_batch");
        assert_eq!(&parallel.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn event_and_dual_rail_adapters_serve_golden_outcomes() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 5, 0.6, 9).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let mut event =
            EventDrivenBackend::new(&model, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(event.name(), "event_driven");
        assert_eq!(&event.serve(&features).unwrap(), workload.expected());

        let datapath = DualRailDatapath::generate(&config).unwrap();
        let mut dual =
            DualRailBackend::new(&datapath, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(dual.name(), "dual_rail");
        assert_eq!(&dual.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn sliced_adapters_serve_golden_outcomes() {
        let config = DatapathConfig::new(4, 2).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let library = Library::umc_ll();
        let workload = InferenceWorkload::random(&config, 5, 0.6, 9).unwrap();
        let features: Vec<&[bool]> = workload.samples().map(|s| s.features).collect();

        let mut event =
            EventSlicedBackend::new(&model, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(event.name(), "event_sliced");
        assert_eq!(event.max_batch(), netlist::LANES);
        assert_eq!(&event.serve(&features).unwrap(), workload.expected());

        let datapath = DualRailDatapath::generate(&config).unwrap();
        let mut dual =
            DualRailSlicedBackend::new(&datapath, &library, workload.masks().clone(), 2).unwrap();
        assert_eq!(dual.name(), "dualrail_sliced");
        assert_eq!(&dual.serve(&features).unwrap(), workload.expected());
    }

    #[test]
    fn mismatched_masks_fail_at_construction() {
        let config = DatapathConfig::new(5, 4).unwrap();
        let other = DatapathConfig::new(6, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let wrong = InferenceWorkload::random(&other, 1, 0.5, 1).unwrap();
        assert!(matches!(
            BatchBackend::new(&model, wrong.masks().clone()),
            Err(ServeError::InvalidConfig { name: "masks", .. })
        ));
    }
}
