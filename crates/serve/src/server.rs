//! The serving runtime: virtual-clock event loop + long-lived service
//! worker.
//!
//! [`Server::run`] replays an arrival [`Trace`] against a [`Backend`]:
//!
//! 1. requests are admitted into the bounded pending queue (or shed /
//!    blocked — [`AdmissionPolicy`]);
//! 2. the [`MicroBatcher`] flushes a micro-batch whenever 64 lanes fill
//!    or the oldest request's `max_wait_ns` deadline expires;
//! 3. each batch is handed over std mpsc channels to **one long-lived
//!    service worker thread** ([`exec::with_service`]) owning the
//!    backend for the whole session;
//! 4. the batch's service time (measured wall-clock, or a fixed
//!    [`ServiceModel`] for deterministic tests) advances the virtual
//!    server-free time, and per-request queueing/service components land
//!    in the [`ServeReport`].
//!
//! **Every served outcome is verified against the workload's golden
//! outcome before the report is returned** — a run whose pipeline
//! corrupted even one request fails with
//! [`ServeError::OutcomeMismatch`] instead of reporting timings.
//!
//! # The virtual-clock determinism contract
//!
//! Arrivals, admission decisions, batch composition and flush times are
//! pure functions of `(trace, config, service times)`.  Under
//! [`ServiceModel::Fixed`] the service times are given, so **the entire
//! report — shed set, batch boundaries, every queueing and service
//! figure — is deterministic** and independent of backend thread count,
//! host load or wall-clock jitter.  Under [`ServiceModel::Measured`]
//! the measured wall-clock durations feed back into the virtual clock
//! (that feedback is what makes saturation real), so telemetry values
//! vary run to run while served *outcomes* remain golden-verified and
//! bit-identical to the offline engines at any thread count.
//!
//! Tie-break: a flush due exactly at an arrival's timestamp happens
//! first — the arriving request misses that batch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use datapath::{InferenceOutcome, InferenceWorkload};
use exec::ServiceClient;

use crate::backend::Backend;
use crate::batcher::{AdmissionPolicy, MicroBatcher, PendingRequest};
use crate::error::ServeError;
use crate::obs::TraceRecorder;
use crate::telemetry::{BackendFaultStats, BatchRecord, ServeReport, ServedRecord, ShedRecord};
use crate::trace::{Trace, VirtualNs};

/// Where a batch's virtual service time comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceModel {
    /// The wall-clock duration of the backend call becomes the virtual
    /// service time (clamped to ≥ 1 ns).  This couples the virtual
    /// queueing system to the backend's real speed — the mode
    /// saturation sweeps use.
    Measured,
    /// A deterministic cost model: `batch_ns + per_request_ns × size`.
    /// The backend still runs (outcomes are still verified); only the
    /// virtual clock ignores its wall-clock duration.  This is the mode
    /// for reproducible tests of the queueing behaviour itself.
    Fixed {
        /// Fixed per-batch cost in virtual ns.
        batch_ns: u64,
        /// Additional cost per request in the batch, in virtual ns.
        per_request_ns: u64,
    },
}

/// Serving-runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded pending-queue capacity (0 allowed: no request may wait —
    /// see [`MicroBatcher::can_admit`]).
    pub queue_capacity: usize,
    /// What happens to a request that finds the queue full.
    pub policy: AdmissionPolicy,
    /// Largest micro-batch to dispatch (clamped to the backend's
    /// [`Backend::max_batch`]; must be ≥ 1).
    pub max_batch: usize,
    /// Longest a request may wait for its batch to fill before the
    /// batcher flushes anyway (the deadline is anchored on arrival).
    pub max_wait_ns: u64,
    /// Service-time source for the virtual clock.
    pub service_model: ServiceModel,
    /// Per-request service-start deadline (virtual ns from arrival).
    /// A request still queued when its deadline passes is dropped at
    /// the next flush instead of being dispatched — stale answers are
    /// worthless at the edge, and shedding them keeps a recovering
    /// (e.g. failed-over) server from burning capacity on requests
    /// whose callers have given up.  `None` disables expiry.
    pub deadline_ns: Option<u64>,
}

impl Default for ServeConfig {
    /// 256-deep shed queue, 64-lane batches, a 100 µs batching
    /// deadline, measured service times.
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            policy: AdmissionPolicy::Shed,
            max_batch: netlist::LANES,
            max_wait_ns: 100_000,
            service_model: ServiceModel::Measured,
            deadline_ns: None,
        }
    }
}

/// An in-process micro-batching inference server bound to one workload
/// (the request population it replays) and one [`Backend`].
#[derive(Debug)]
pub struct Server<'w, B: Backend> {
    backend: B,
    workload: &'w InferenceWorkload,
    config: ServeConfig,
}

impl<'w, B: Backend> Server<'w, B> {
    /// Builds a server.  Requests replay `workload` samples cyclically
    /// (request `id` carries sample `id % workload.len()`), so golden
    /// outcomes are known for every request.
    ///
    /// # Errors
    ///
    /// Rejects an empty workload and a zero `max_batch`.
    pub fn new(
        backend: B,
        workload: &'w InferenceWorkload,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        if workload.is_empty() {
            return Err(ServeError::InvalidConfig {
                name: "workload",
                reason: "must contain at least one sample to replay".into(),
            });
        }
        if config.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                name: "max_batch",
                reason: "must be at least 1".into(),
            });
        }
        Ok(Self {
            backend,
            workload,
            config,
        })
    }

    /// The backend's telemetry name.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves an open-loop trace: requests arrive at the trace's fixed
    /// virtual times regardless of how the server keeps up.
    ///
    /// # Errors
    ///
    /// Propagates backend failures and fails on any served outcome that
    /// diverges from its golden outcome.
    pub fn run(&mut self, trace: &Trace) -> Result<ServeReport, ServeError>
    where
        B: Send,
    {
        let offered_qps = trace.offered_qps();
        let source = OpenSource {
            arrivals: trace.arrivals(),
            next: 0,
        };
        self.run_session(source, offered_qps, None)
    }

    /// Like [`Server::run`], recording every request's lifecycle —
    /// arrival, admission, flush, dispatch, completion — plus
    /// queue-depth samples and breaker-state transitions into
    /// `recorder` on the virtual clock (see [`crate::TraceRecorder`]).
    /// The report is identical to an untraced run.
    ///
    /// # Errors
    ///
    /// As [`Server::run`].
    pub fn run_traced(
        &mut self,
        trace: &Trace,
        recorder: &mut TraceRecorder,
    ) -> Result<ServeReport, ServeError>
    where
        B: Send,
    {
        let offered_qps = trace.offered_qps();
        let source = OpenSource {
            arrivals: trace.arrivals(),
            next: 0,
        };
        self.run_session(source, offered_qps, Some(recorder))
    }

    /// Serves a closed loop: `clients` concurrent clients that each
    /// issue a request, wait for its completion (or shedding), think
    /// for `think_ns`, and repeat — `requests` requests in total.  The
    /// offered load self-adjusts to the service rate, so a closed run
    /// measures capacity under bounded concurrency rather than
    /// overload.
    ///
    /// # Errors
    ///
    /// As [`Server::run`]; additionally rejects zero clients.
    pub fn run_closed(
        &mut self,
        clients: usize,
        requests: usize,
        think_ns: u64,
    ) -> Result<ServeReport, ServeError>
    where
        B: Send,
    {
        if clients == 0 {
            return Err(ServeError::InvalidConfig {
                name: "clients",
                reason: "closed-loop load needs at least one client".into(),
            });
        }
        let mut ready = BinaryHeap::new();
        for client in 0..clients.min(requests) {
            ready.push(Reverse((0u64, client as u32)));
        }
        let source = ClosedSource {
            ready,
            to_issue: requests,
            think_ns,
        };
        self.run_session(source, 0.0, None)
    }

    /// Like [`Server::run_closed`] with lifecycle tracing (see
    /// [`Server::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Server::run_closed`].
    pub fn run_closed_traced(
        &mut self,
        clients: usize,
        requests: usize,
        think_ns: u64,
        recorder: &mut TraceRecorder,
    ) -> Result<ServeReport, ServeError>
    where
        B: Send,
    {
        if clients == 0 {
            return Err(ServeError::InvalidConfig {
                name: "clients",
                reason: "closed-loop load needs at least one client".into(),
            });
        }
        let mut ready = BinaryHeap::new();
        for client in 0..clients.min(requests) {
            ready.push(Reverse((0u64, client as u32)));
        }
        let source = ClosedSource {
            ready,
            to_issue: requests,
            think_ns,
        };
        self.run_session(source, 0.0, Some(recorder))
    }

    /// The shared event loop: spawns the long-lived service worker and
    /// drives arrivals + flushes in virtual-time order.
    fn run_session<S: ArrivalSource>(
        &mut self,
        source: S,
        offered_qps: f64,
        tracer: Option<&mut TraceRecorder>,
    ) -> Result<ServeReport, ServeError>
    where
        B: Send,
    {
        let lanes = self.config.max_batch.min(self.backend.max_batch()).max(1);
        let batcher = MicroBatcher::new(self.config.queue_capacity, lanes, self.config.max_wait_ns);
        let workload = self.workload;
        let backend = &mut self.backend;
        let policy = self.config.policy;
        let model = self.config.service_model;
        let deadline_ns = self.config.deadline_ns;
        // Per-batch fault counters travel back only when someone is
        // listening — breaker transitions are trace events, and reading
        // them per batch would otherwise be wasted work.
        let report_faults = tracer.is_some();

        let mut report = exec::with_service(
            // The long-lived worker: owns the backend for the session,
            // answers one micro-batch per job, reports measured wall ns.
            move |batch: Vec<PendingRequest>| {
                let features: Vec<&[bool]> = batch
                    .iter()
                    .map(|p| workload.sample(p.sample).features)
                    .collect();
                let start = Instant::now();
                let result = backend.serve(&features);
                let measured_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let faults = if report_faults {
                    backend.fault_stats()
                } else {
                    None
                };
                (batch, result, measured_ns, faults)
            },
            move |client| {
                let mut session = Session {
                    batcher,
                    source,
                    policy,
                    model,
                    deadline_ns,
                    workload,
                    next_id: 0,
                    t_free: 0,
                    admit_frontier: 0,
                    makespan: 0,
                    served: Vec::new(),
                    shed: Vec::new(),
                    deadline_expired: Vec::new(),
                    batches: Vec::new(),
                    tracer,
                };
                session.drive(client)?;
                Ok::<_, ServeError>(ServeReport {
                    served: session.served,
                    shed: session.shed,
                    deadline_expired: session.deadline_expired,
                    batches: session.batches,
                    makespan_ns: session.makespan,
                    offered_qps,
                    backend_faults: None,
                })
            },
        )?;
        // The worker's mutable borrow of the backend ends with the
        // session; read the wrapper's fault counters (if any) now.
        report.backend_faults = self.backend.fault_stats();
        Ok(report)
    }
}

/// The worker's response: the batch it carried, the outcomes, the
/// measured wall-clock nanoseconds, and (on traced runs only) the
/// backend's fault counters after this batch.
type ServiceResponse = (
    Vec<PendingRequest>,
    Result<Vec<InferenceOutcome>, ServeError>,
    u64,
    Option<BackendFaultStats>,
);

/// Where arrivals come from: a fixed open-loop trace or closed-loop
/// clients reacting to completions.
trait ArrivalSource {
    /// Virtual time of the next arrival, if any.
    fn peek(&mut self) -> Option<VirtualNs>;
    /// Consumes the next arrival: `(time, client)`.  `None` when the
    /// source is exhausted — callers decide whether that is expected
    /// (drained trace) or an invariant violation (after a `Some` peek).
    fn next_arrival(&mut self) -> Option<(VirtualNs, u32)>;
    /// A request of `client` completed at `completion_ns`.
    fn on_complete(&mut self, client: u32, completion_ns: VirtualNs);
    /// A request of `client` was shed at `at_ns`.
    fn on_shed(&mut self, client: u32, at_ns: VirtualNs);
}

struct OpenSource<'t> {
    arrivals: &'t [VirtualNs],
    next: usize,
}

impl ArrivalSource for OpenSource<'_> {
    fn peek(&mut self) -> Option<VirtualNs> {
        self.arrivals.get(self.next).copied()
    }

    fn next_arrival(&mut self) -> Option<(VirtualNs, u32)> {
        let t = *self.arrivals.get(self.next)?;
        self.next += 1;
        Some((t, 0))
    }

    fn on_complete(&mut self, _client: u32, _completion_ns: VirtualNs) {}

    fn on_shed(&mut self, _client: u32, _at_ns: VirtualNs) {}
}

struct ClosedSource {
    /// Min-heap of `(next issue time, client)` — ties resolve by client
    /// id, keeping closed-loop runs deterministic.
    ready: BinaryHeap<Reverse<(VirtualNs, u32)>>,
    /// Requests left to issue across all clients.
    to_issue: usize,
    think_ns: u64,
}

impl ArrivalSource for ClosedSource {
    fn peek(&mut self) -> Option<VirtualNs> {
        if self.to_issue == 0 {
            return None;
        }
        self.ready.peek().map(|Reverse((t, _))| *t)
    }

    fn next_arrival(&mut self) -> Option<(VirtualNs, u32)> {
        if self.to_issue == 0 {
            return None;
        }
        let Reverse((t, client)) = self.ready.pop()?;
        self.to_issue -= 1;
        Some((t, client))
    }

    fn on_complete(&mut self, client: u32, completion_ns: VirtualNs) {
        self.ready.push(Reverse((
            completion_ns.saturating_add(self.think_ns),
            client,
        )));
    }

    fn on_shed(&mut self, client: u32, at_ns: VirtualNs) {
        // A shed response returns to the client immediately; it thinks,
        // then issues its next request.
        self.on_complete(client, at_ns);
    }
}

/// Mutable state of one serving session.
struct Session<'w, 't, S> {
    batcher: MicroBatcher,
    source: S,
    policy: AdmissionPolicy,
    model: ServiceModel,
    deadline_ns: Option<u64>,
    workload: &'w InferenceWorkload,
    next_id: usize,
    t_free: VirtualNs,
    /// No request may be admitted before this time: it advances to each
    /// executed flush's virtual time, so that when a blocked request
    /// forces a *future* flush (the queue state then reflects a later
    /// instant), subsequent same- or earlier-timestamped arrivals admit
    /// behind it chronologically instead of jumping the FIFO.
    admit_frontier: VirtualNs,
    makespan: VirtualNs,
    served: Vec<ServedRecord>,
    shed: Vec<ShedRecord>,
    deadline_expired: Vec<ShedRecord>,
    batches: Vec<BatchRecord>,
    /// Lifecycle recorder for traced runs; `None` keeps the loop free
    /// of tracing work.
    tracer: Option<&'t mut TraceRecorder>,
}

impl<S: ArrivalSource> Session<'_, '_, S> {
    fn drive(
        &mut self,
        client: &mut ServiceClient<Vec<PendingRequest>, ServiceResponse>,
    ) -> Result<(), ServeError> {
        loop {
            let next_arrival = self.source.peek();
            let next_flush = self.batcher.next_flush_ns(self.t_free);
            match (next_flush, next_arrival) {
                (None, None) => break,
                (Some(f), None) => self.flush(f, client)?,
                (Some(f), Some(a)) if f <= a => self.flush(f, client)?,
                (_, Some(_)) => self.handle_arrival(client)?,
            }
        }
        Ok(())
    }

    fn handle_arrival(
        &mut self,
        client: &mut ServiceClient<Vec<PendingRequest>, ServiceResponse>,
    ) -> Result<(), ServeError> {
        let Some((arrival_ns, client_id)) = self.source.next_arrival() else {
            return Err(ServeError::SchedulerInvariant {
                what: "arrival source announced an arrival via peek() but could not deliver it",
            });
        };
        let id = self.next_id;
        self.next_id += 1;
        let sample = id % self.workload.len();
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.arrival(id, sample, arrival_ns);
        }
        // Admission happens no earlier than the latest executed flush:
        // blocked requests may have pulled the queue state into the
        // future, and FIFO order must survive that (see admit_frontier).
        let admit_ns = arrival_ns.max(self.admit_frontier);
        if self.batcher.can_admit(admit_ns, self.t_free) {
            self.batcher.admit(PendingRequest {
                id,
                sample,
                client: client_id,
                arrival_ns,
                admit_ns,
            });
            if let Some(tracer) = self.tracer.as_deref_mut() {
                tracer.queue_depth(admit_ns, self.batcher.len());
            }
            return Ok(());
        }
        match self.policy {
            AdmissionPolicy::Shed => {
                self.shed.push(ShedRecord {
                    id,
                    sample,
                    arrival_ns,
                });
                if let Some(tracer) = self.tracer.as_deref_mut() {
                    tracer.shed(id, arrival_ns, "queue full");
                }
                self.source.on_shed(client_id, arrival_ns);
            }
            AdmissionPolicy::Block => {
                // The client waits: execute the natural upcoming flushes
                // (they are already due after this arrival's timestamp —
                // earlier ones ran before we got here) until a slot
                // frees, and admit at that freeing instant.
                let mut admit_ns = admit_ns;
                while !self.batcher.can_admit(admit_ns, self.t_free) {
                    if let Some(f) = self.batcher.next_flush_ns(self.t_free) {
                        self.flush(f, client)?;
                        admit_ns = admit_ns.max(f);
                    } else {
                        // Zero-capacity queue: the only slot is "server
                        // idle"; wait for it.
                        admit_ns = admit_ns.max(self.t_free);
                    }
                }
                self.batcher.admit(PendingRequest {
                    id,
                    sample,
                    client: client_id,
                    arrival_ns,
                    admit_ns,
                });
                if let Some(tracer) = self.tracer.as_deref_mut() {
                    tracer.queue_depth(admit_ns, self.batcher.len());
                }
            }
        }
        Ok(())
    }

    /// Dispatches the next micro-batch at virtual time `flush_ns`:
    /// sends it to the service worker, folds the (measured or modelled)
    /// service time back into the virtual clock, verifies outcomes and
    /// records telemetry.
    fn flush(
        &mut self,
        flush_ns: VirtualNs,
        client: &mut ServiceClient<Vec<PendingRequest>, ServiceResponse>,
    ) -> Result<(), ServeError> {
        let mut batch = self.batcher.take_batch();
        if let Some(deadline) = self.deadline_ns {
            // Requests whose deadline passed while they queued are shed
            // now, before the backend spends service time on them.
            let (live, expired): (Vec<_>, Vec<_>) = batch
                .into_iter()
                .partition(|p| flush_ns <= p.arrival_ns.saturating_add(deadline));
            batch = live;
            for pending in expired {
                self.deadline_expired.push(ShedRecord {
                    id: pending.id,
                    sample: pending.sample,
                    arrival_ns: pending.arrival_ns,
                });
                if let Some(tracer) = self.tracer.as_deref_mut() {
                    tracer.shed(pending.id, flush_ns, "deadline expired");
                }
                self.source.on_shed(pending.client, flush_ns);
            }
            if batch.is_empty() {
                // The flush still happened (the queue state advanced),
                // but there is nothing to dispatch.
                self.admit_frontier = self.admit_frontier.max(flush_ns);
                return Ok(());
            }
        }
        let size = batch.len();
        let (batch, result, measured_ns, faults) = client.call(batch);
        let outcomes = result?;
        if outcomes.len() != size {
            return Err(ServeError::BatchShapeMismatch {
                expected: size,
                got: outcomes.len(),
            });
        }
        let service_ns = match self.model {
            ServiceModel::Measured => measured_ns.max(1),
            ServiceModel::Fixed {
                batch_ns,
                per_request_ns,
            } => batch_ns
                .saturating_add(per_request_ns.saturating_mul(size as u64))
                .max(1),
        };
        let completion_ns = flush_ns.saturating_add(service_ns);
        self.t_free = completion_ns;
        self.admit_frontier = self.admit_frontier.max(flush_ns);
        self.makespan = self.makespan.max(completion_ns);
        let batch_index = self.batches.len();
        self.batches.push(BatchRecord {
            flush_ns,
            size,
            service_ns,
        });
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.batch(batch_index, flush_ns, size, service_ns);
            tracer.queue_depth(flush_ns, self.batcher.len());
            if let Some(stats) = faults {
                tracer.breaker_state(completion_ns, stats.breaker_open);
            }
        }
        for (pending, outcome) in batch.into_iter().zip(outcomes) {
            // Golden verification before the timing is accepted.
            if *self.workload.sample(pending.sample).expected != outcome {
                return Err(ServeError::OutcomeMismatch {
                    request: pending.id,
                    sample: pending.sample,
                });
            }
            let queue_ns = flush_ns - pending.arrival_ns;
            if let Some(tracer) = self.tracer.as_deref_mut() {
                tracer.request_served(
                    pending.id,
                    pending.sample,
                    pending.arrival_ns,
                    queue_ns,
                    service_ns,
                    batch_index,
                );
            }
            self.served.push(ServedRecord {
                id: pending.id,
                sample: pending.sample,
                client: pending.client,
                arrival_ns: pending.arrival_ns,
                queue_ns,
                service_ns,
                batch: batch_index,
                outcome,
            });
            self.source.on_complete(pending.client, completion_ns);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BatchBackend;
    use datapath::{BatchGoldenModel, DatapathConfig};

    fn fixture() -> (DatapathConfig, BatchGoldenModel, InferenceWorkload) {
        let config = DatapathConfig::new(6, 4).unwrap();
        let model = BatchGoldenModel::generate(&config).unwrap();
        let workload = InferenceWorkload::random(&config, 32, 0.7, 11).unwrap();
        (config, model, workload)
    }

    fn fixed_config() -> ServeConfig {
        ServeConfig {
            queue_capacity: 256,
            policy: AdmissionPolicy::Shed,
            max_batch: 64,
            max_wait_ns: 1_000,
            service_model: ServiceModel::Fixed {
                batch_ns: 100,
                per_request_ns: 10,
            },
            deadline_ns: None,
        }
    }

    #[test]
    fn open_loop_serves_everything_below_saturation() {
        let (_, model, workload) = fixture();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut server = Server::new(backend, &workload, fixed_config()).unwrap();
        assert_eq!(server.backend_name(), "batch");
        // 200 requests, 2 µs apart: far below the fixed service rate.
        let trace = Trace::uniform(200, 500_000.0);
        let report = server.run(&trace).unwrap();
        assert_eq!(report.served_count(), 200);
        assert_eq!(report.shed_count(), 0);
        assert!(report.makespan_ns > 0);
        assert!(report.achieved_qps() > 0.0);
        // Request ids are served in order under an open-loop FIFO.
        let ids: Vec<usize> = report.served.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..200).collect::<Vec<_>>());
        // Batches respect the lane limit and cover every request.
        assert!(report.batches.iter().all(|b| b.size >= 1 && b.size <= 64));
        assert_eq!(
            report.batches.iter().map(|b| b.size).sum::<usize>(),
            report.served_count()
        );
    }

    #[test]
    fn fixed_model_runs_are_fully_deterministic() {
        let (_, model, workload) = fixture();
        let trace = Trace::poisson(300, 2e6, 9);
        let run = |threads: usize| {
            let backend = crate::backend::ParallelBatchBackend::new(
                &model,
                workload.masks().clone(),
                threads,
            )
            .unwrap();
            Server::new(backend, &workload, fixed_config())
                .unwrap()
                .run(&trace)
                .unwrap()
        };
        let first = run(1);
        // Same trace + fixed service model → bit-identical report,
        // regardless of wall clock or backend thread count.
        let second = run(1);
        assert_eq!(first, second);
        let threaded = run(3);
        assert_eq!(first, threaded);
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let (_, model, workload) = fixture();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut server = Server::new(backend, &workload, fixed_config()).unwrap();
        // 3 requests arriving 100 ns apart can never fill 64 lanes; the
        // 1 µs deadline must flush them as one partial batch.
        let trace = Trace::from_arrivals(vec![0, 100, 200]);
        let report = server.run(&trace).unwrap();
        assert_eq!(report.served_count(), 3);
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].size, 3);
        // The flush fired at the oldest arrival's deadline: 0 + 1000.
        assert_eq!(report.batches[0].flush_ns, 1_000);
        assert_eq!(report.served[0].queue_ns, 1_000);
        assert_eq!(report.served[2].queue_ns, 800);
    }

    #[test]
    fn closed_loop_issues_exactly_the_requested_load() {
        let (_, model, workload) = fixture();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut server = Server::new(backend, &workload, fixed_config()).unwrap();
        let report = server.run_closed(4, 40, 500).unwrap();
        assert_eq!(report.served_count() + report.shed_count(), 40);
        // Plenty of queue: nothing sheds in a 4-client closed loop.
        assert_eq!(report.shed_count(), 0);
        // At most `clients` requests are ever in flight, so no batch
        // can exceed the concurrency.
        assert!(report.batches.iter().all(|b| b.size <= 4));
        // Deterministic replay.
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut again = Server::new(backend, &workload, fixed_config()).unwrap();
        assert_eq!(again.run_closed(4, 40, 500).unwrap(), report);
    }

    #[test]
    fn expired_deadlines_shed_at_flush_time() {
        let (_, model, workload) = fixture();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        // Per-request deadline (600 ns) shorter than the batching wait
        // (1 µs): the first arrivals of a trickle expire before the
        // batcher's deadline flush fires.
        let config = ServeConfig {
            deadline_ns: Some(600),
            ..fixed_config()
        };
        let mut server = Server::new(backend, &workload, config).unwrap();
        let trace = Trace::from_arrivals(vec![0, 100, 700]);
        let report = server.run(&trace).unwrap();
        // Flush fires at 0 + max_wait = 1000: requests 0 (deadline 600)
        // and 1 (deadline 700) have expired; request 2 (deadline 1700)
        // is served alone.
        assert_eq!(report.deadline_expired_count(), 2);
        assert_eq!(report.served_count(), 1);
        assert_eq!(report.shed_count(), 0);
        assert_eq!(report.served[0].id, 2);
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].size, 1);
        let expired_ids: Vec<usize> = report.deadline_expired.iter().map(|r| r.id).collect();
        assert_eq!(expired_ids, vec![0, 1]);
        // Summary counts the expired requests as offered load.
        let summary = report.summary();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.deadline_expired, 2);
        assert!(summary.to_string().contains("expired 2"));
        // Deterministic replay with the deadline active.
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut again = Server::new(backend, &workload, config).unwrap();
        assert_eq!(again.run(&trace).unwrap(), report);
    }

    #[test]
    fn an_all_expired_flush_dispatches_nothing() {
        let (_, model, workload) = fixture();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let config = ServeConfig {
            deadline_ns: Some(100),
            ..fixed_config()
        };
        let mut server = Server::new(backend, &workload, config).unwrap();
        // Both requests expire (deadlines 100 and 300) before the flush
        // at 1000; no batch reaches the backend.
        let trace = Trace::from_arrivals(vec![0, 200]);
        let report = server.run(&trace).unwrap();
        assert_eq!(report.served_count(), 0);
        assert_eq!(report.deadline_expired_count(), 2);
        assert!(report.batches.is_empty());
        assert_eq!(report.makespan_ns, 0);
    }

    #[test]
    fn circuit_breaker_failover_keeps_the_session_golden() {
        let (_, model, workload) = fixture();
        // The primary fails its first 4 calls; threshold 2 with one
        // retry per batch opens the breaker after two failed batches,
        // and the golden fallback carries the rest of the session.
        let primary = crate::backend::FlakyBackend::new(
            BatchBackend::new(&model, workload.masks().clone()).unwrap(),
            4,
        );
        let fallback = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let breaker = crate::backend::CircuitBreaker::new(primary, fallback, 2, 1);
        let mut server = Server::new(breaker, &workload, fixed_config()).unwrap();
        assert_eq!(server.backend_name(), "circuit_breaker");
        let trace = Trace::uniform(200, 500_000.0);
        let report = server.run(&trace).unwrap();
        // Every request is served and golden-verified despite the
        // primary faulting: run() would have failed otherwise.
        assert_eq!(report.served_count(), 200);
        let faults = report.backend_faults.expect("breaker reports fault stats");
        assert!(faults.breaker_open);
        assert_eq!(faults.primary_errors, 4);
        assert_eq!(faults.retries, 2);
        assert_eq!(faults.fallback_batches as usize, report.batches.len());
        assert_eq!(faults.fallback_requests, 200);
        let summary = report.summary();
        assert_eq!(summary.retries, 2);
        assert_eq!(summary.fallback_batches, faults.fallback_batches);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (config, model, workload) = fixture();
        let empty = InferenceWorkload::new(&config, workload.masks().clone(), vec![]).unwrap();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        assert!(matches!(
            Server::new(backend, &empty, ServeConfig::default()),
            Err(ServeError::InvalidConfig {
                name: "workload",
                ..
            })
        ));
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let bad = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::new(backend, &workload, bad),
            Err(ServeError::InvalidConfig {
                name: "max_batch",
                ..
            })
        ));
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let mut server = Server::new(backend, &workload, ServeConfig::default()).unwrap();
        assert!(matches!(
            server.run_closed(0, 10, 0),
            Err(ServeError::InvalidConfig {
                name: "clients",
                ..
            })
        ));
        assert_eq!(server.config().queue_capacity, 256);
    }

    #[test]
    fn measured_service_still_verifies_and_serves_in_order() {
        let (_, model, workload) = fixture();
        let backend = BatchBackend::new(&model, workload.masks().clone()).unwrap();
        let config = ServeConfig {
            max_wait_ns: 10_000,
            ..ServeConfig::default()
        };
        let mut server = Server::new(backend, &workload, config).unwrap();
        let trace = Trace::bursty(128, 16, 1e6, 3);
        let report = server.run(&trace).unwrap();
        assert_eq!(report.served_count() + report.shed_count(), 128);
        assert!(report.served_count() > 0);
        for record in &report.served {
            assert!(record.service_ns >= 1);
            assert_eq!(
                &record.outcome,
                workload.sample(record.sample).expected,
                "served outcome must be golden"
            );
        }
    }
}
