//! Error type for the serving runtime.

use std::error::Error;
use std::fmt;

use datapath::DatapathError;

/// Errors produced while configuring or running an inference server.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A serving-configuration parameter was outside the supported
    /// range.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The backend failed to serve a micro-batch.
    Backend(DatapathError),
    /// A backend returned the wrong number of outcomes for a batch.
    BatchShapeMismatch {
        /// Requests in the dispatched batch.
        expected: usize,
        /// Outcomes the backend returned.
        got: usize,
    },
    /// A served outcome diverged from the workload's golden outcome —
    /// the serving pipeline corrupted a request (timings from such a
    /// run must not be trusted, so the run fails loudly).
    OutcomeMismatch {
        /// The diverging request's serial id.
        request: usize,
        /// The workload sample the request replayed.
        sample: usize,
    },
    /// The virtual-time scheduler violated one of its own invariants
    /// (e.g. an arrival source announced an arrival it could not
    /// deliver).  Indicates a bug in the serving loop, never in the
    /// caller's configuration or workload.
    SchedulerInvariant {
        /// The broken invariant.
        what: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { name, reason } => {
                write!(f, "invalid serving configuration `{name}`: {reason}")
            }
            ServeError::Backend(e) => write!(f, "backend error: {e}"),
            ServeError::BatchShapeMismatch { expected, got } => write!(
                f,
                "backend returned {got} outcomes for a {expected}-request batch"
            ),
            ServeError::OutcomeMismatch { request, sample } => write!(
                f,
                "request {request} (workload sample {sample}) diverged from its golden outcome"
            ),
            ServeError::SchedulerInvariant { what } => {
                write!(f, "serving-scheduler invariant violated: {what}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatapathError> for ServeError {
    fn from(e: DatapathError) -> Self {
        ServeError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::InvalidConfig {
            name: "max_batch",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("max_batch"));
        let e = ServeError::OutcomeMismatch {
            request: 3,
            sample: 1,
        };
        assert!(e.to_string().contains("request 3"));
        let e: ServeError = DatapathError::DecodeFailure("x".into()).into();
        assert!(matches!(e, ServeError::Backend(_)));
        assert!(Error::source(&e).is_some());
    }
}
