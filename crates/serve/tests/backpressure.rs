//! Backpressure edge cases of the serving runtime: zero-capacity
//! queues, shed-vs-block accounting, and deadline flushes of partially
//! filled lane words.
//!
//! All tests run with [`ServiceModel::Fixed`], so every assertion is on
//! fully deterministic virtual-clock telemetry.

use datapath::{BatchGoldenModel, DatapathConfig, InferenceWorkload};
use tm_serve::{AdmissionPolicy, BatchBackend, ServeConfig, Server, ServiceModel, Trace};

fn fixture() -> (BatchGoldenModel, InferenceWorkload) {
    let config = DatapathConfig::new(6, 4).unwrap();
    let model = BatchGoldenModel::generate(&config).unwrap();
    let workload = InferenceWorkload::random(&config, 16, 0.7, 5).unwrap();
    (model, workload)
}

fn config(capacity: usize, policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig {
        queue_capacity: capacity,
        policy,
        max_batch: 64,
        max_wait_ns: 1_000,
        // 500 ns per batch + 10 ns per request: slow enough that tight
        // arrival spacing saturates the single virtual server.
        service_model: ServiceModel::Fixed {
            batch_ns: 500,
            per_request_ns: 10,
        },
        deadline_ns: None,
    }
}

fn server<'w>(
    model: &'w BatchGoldenModel,
    workload: &'w InferenceWorkload,
    cfg: ServeConfig,
) -> Server<'w, BatchBackend<'w>> {
    let backend = BatchBackend::new(model, workload.masks().clone()).unwrap();
    Server::new(backend, workload, cfg).unwrap()
}

#[test]
fn zero_capacity_shed_serves_only_idle_arrivals() {
    let (model, workload) = fixture();
    let mut srv = server(&model, &workload, config(0, AdmissionPolicy::Shed));
    // Service of a singleton = 510 ns.  Arrivals every 200 ns: while one
    // request is in service, the next two arrive to a busy server with
    // no queue and must be shed.
    let trace = Trace::from_arrivals((1..=9).map(|k| k * 200).collect());
    let report = srv.run(&trace).unwrap();
    assert_eq!(report.served_count() + report.shed_count(), 9);
    assert!(report.shed_count() > 0, "a busy zero-capacity server sheds");
    // Zero capacity means nothing ever waits: every served request has
    // zero queueing delay and rides a singleton batch.
    for record in &report.served {
        assert_eq!(record.queue_ns, 0);
    }
    assert!(report.batches.iter().all(|b| b.size == 1));
    // Deterministic shed pattern: first arrival served, then the 510 ns
    // service shadows the next two 200 ns arrivals, and so on.
    let shed_ids: Vec<usize> = report.shed.iter().map(|s| s.id).collect();
    assert_eq!(shed_ids, vec![1, 2, 4, 5, 7, 8]);
}

#[test]
fn zero_capacity_block_serves_everything_with_queueing_delay() {
    let (model, workload) = fixture();
    let mut srv = server(&model, &workload, config(0, AdmissionPolicy::Block));
    let trace = Trace::from_arrivals((1..=9).map(|k| k * 200).collect());
    let report = srv.run(&trace).unwrap();
    // Blocking never drops: all 9 serve, still as singletons.
    assert_eq!(report.served_count(), 9);
    assert_eq!(report.shed_count(), 0);
    assert!(report.batches.iter().all(|b| b.size == 1));
    // The clients queue *outside* the server: later requests accrue
    // real queueing delay even though the pending queue holds nothing.
    let queue_delays: Vec<u64> = report.served.iter().map(|r| r.queue_ns).collect();
    assert_eq!(queue_delays[0], 0);
    assert!(
        queue_delays.windows(2).all(|w| w[0] <= w[1]),
        "under overload, blocked delays grow monotonically: {queue_delays:?}"
    );
    assert!(*queue_delays.last().unwrap() > 1_000);
}

#[test]
fn shed_and_block_account_identical_overload_differently() {
    let (model, workload) = fixture();
    // 120 requests in bursts of 30 at 3M qps: far beyond the fixed
    // service rate, against an 8-deep queue.
    let trace = Trace::bursty(120, 30, 3e6, 11);

    let shed_report = server(&model, &workload, config(8, AdmissionPolicy::Shed))
        .run(&trace)
        .unwrap();
    // Shed: bounded queue + bounded delay, dropped requests counted.
    assert_eq!(shed_report.served_count() + shed_report.shed_count(), 120);
    assert!(shed_report.shed_count() > 0);
    // No admitted request can wait longer than deadline + head-of-line
    // service: with an 8-deep queue the tail stays bounded.
    let max_queue = shed_report.summary().queue_p99_ns;
    assert!(
        max_queue < 10_000.0,
        "shed policy must bound queueing delay, saw p99 {max_queue}"
    );

    let block_report = server(&model, &workload, config(8, AdmissionPolicy::Block))
        .run(&trace)
        .unwrap();
    // Block: nothing dropped, delay unbounded instead.
    assert_eq!(block_report.served_count(), 120);
    assert_eq!(block_report.shed_count(), 0);
    assert!(
        block_report.summary().queue_p99_ns > max_queue,
        "blocking trades sheds for queueing delay"
    );
    // Both policies serve golden outcomes for everything they serve.
    for report in [&shed_report, &block_report] {
        for record in &report.served {
            assert_eq!(&record.outcome, workload.sample(record.sample).expected);
        }
    }
}

#[test]
fn deadline_flush_dispatches_a_partially_filled_lane_word() {
    let (model, workload) = fixture();
    let mut srv = server(&model, &workload, config(256, AdmissionPolicy::Shed));
    // 7 requests arrive 50 ns apart, then silence: 7 < 64 lanes, so only
    // the 1 µs deadline can flush them — as ONE partial batch.
    let trace = Trace::from_arrivals((0..7).map(|k| k * 50).collect());
    let report = srv.run(&trace).unwrap();
    assert_eq!(report.served_count(), 7);
    assert_eq!(report.batches.len(), 1);
    assert_eq!(
        report.batches[0].size, 7,
        "partial lane word dispatched whole"
    );
    // Flush at the oldest arrival's deadline.
    assert_eq!(report.batches[0].flush_ns, 1_000);
    // Queueing delay = deadline wait minus each later arrival's offset.
    let expected_delays: Vec<u64> = (0..7).map(|k| 1_000 - k * 50).collect();
    let actual: Vec<u64> = report.served.iter().map(|r| r.queue_ns).collect();
    assert_eq!(actual, expected_delays);
}

#[test]
fn lanes_full_flush_preempts_the_deadline() {
    let (model, workload) = fixture();
    let mut srv = server(&model, &workload, config(256, AdmissionPolicy::Shed));
    // 64 requests all arrive at t = 100: the lane word fills instantly,
    // so the flush happens at 100, far before the 1100 ns deadline.
    let trace = Trace::from_arrivals(vec![100; 64]);
    let report = srv.run(&trace).unwrap();
    assert_eq!(report.batches.len(), 1);
    assert_eq!(report.batches[0].size, 64);
    assert_eq!(report.batches[0].flush_ns, 100);
    assert!(report.served.iter().all(|r| r.queue_ns == 0));
}

#[test]
fn capacity_one_queue_alternates_admit_and_shed_deterministically() {
    let (model, workload) = fixture();
    let mut srv = server(&model, &workload, config(1, AdmissionPolicy::Shed));
    // Single-slot queue under a 100 ns arrival stream: one request rides
    // in the queue while one is in service; the rest shed.  Rerunning
    // the same trace reproduces the identical report (virtual-clock
    // determinism under a fixed service model).
    let trace = Trace::uniform(50, 1e7);
    let first = srv.run(&trace).unwrap();
    assert_eq!(first.served_count() + first.shed_count(), 50);
    assert!(first.shed_count() > 0);
    assert!(first.batches.iter().all(|b| b.size == 1));
    let mut again = server(&model, &workload, config(1, AdmissionPolicy::Shed));
    assert_eq!(again.run(&trace).unwrap(), first);
}
