//! Umbrella crate re-exporting every component of the reproduction of
//! *Low-Latency Asynchronous Logic Design for Inference at the Edge*
//! (Wheeldon, Yakovlev, Shafik, Morris — DATE 2021).
//!
//! The workspace implements, in pure Rust:
//!
//! * [`exec`] — a std-only data-parallel runtime (scoped worker threads
//!   over a chunked atomic work queue) behind the multi-threaded batch
//!   and event-driven inference paths;
//! * [`netlist`] — a structural gate-level netlist IR;
//! * [`celllib`] — parametric 65 nm standard-cell library models
//!   (UMC LL and FULL DIFFUSION) with voltage-dependent timing and power;
//! * [`sta`] — static timing analysis (arrival times, grace period,
//!   synchronous clock period);
//! * [`gatesim`] — an event-driven gate-level simulator with latency and
//!   switching-activity monitors, an `Arc`-shared engine compilation
//!   ([`gatesim::EngineProgram`]) and an operand-sharded parallel mode
//!   ([`gatesim::ParallelEventSim`]);
//! * [`dualrail`] — the paper's core contribution: early-propagative
//!   dual-rail expansion with a reduced completion-detection scheme;
//! * [`tsetlin`] — the Tsetlin machine learning algorithm (training and
//!   inference) plus synthetic edge datasets;
//! * [`datapath`] — Tsetlin-machine inference datapath generators
//!   (clause logic, population count, magnitude comparator) in both
//!   single-rail synchronous and dual-rail asynchronous styles, plus
//!   the bulk-inference runtimes ([`datapath::BatchInference`],
//!   [`datapath::ParallelBatchInference`] and the per-operand-latency
//!   [`datapath::EventDrivenInference`]);
//! * [`obs`] — the unified observability layer: a deterministic
//!   metrics registry (atomic counters/gauges/histograms with
//!   bit-identical snapshots at any thread count), VCD waveform
//!   capture for the simulators, and Chrome-trace export for the
//!   serving runtime — zero-overhead when disabled;
//! * [`serve`] — the micro-batching inference **serving runtime**:
//!   requests on a deterministic virtual clock, dynamic batching (lanes
//!   full or deadline), bounded-queue admission control (block/shed) and
//!   queueing-vs-service tail-latency telemetry over any of the four
//!   inference engines ([`serve::Backend`]).
//!
//! # Quickstart
//!
//! ```
//! use tm_async::datapath::{DatapathConfig, DualRailDatapath};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small inference datapath: 4 features, 4 clauses per polarity.
//! let config = DatapathConfig::new(4, 4)?;
//! let dp = DualRailDatapath::generate(&config)?;
//! assert!(dp.netlist().cell_count() > 100);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios (`edge_inference` ends with
//! the sharded per-operand event path), `ARCHITECTURE.md` for the
//! design of the batch spine, the sharding contract, the three-tier
//! event queue and the engine-program split, and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

pub use celllib;
pub use datapath;
pub use dualrail;
pub use exec;
pub use gatesim;
pub use netlist;
pub use sta;
pub use tm_obs as obs;
pub use tm_serve as serve;
pub use tsetlin;
