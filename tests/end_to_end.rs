//! Cross-crate integration tests: train → export → generate hardware →
//! simulate → compare against the software golden model, for both design
//! styles, plus the timing-assumption and voltage-robustness claims.

use tm_async::celllib::Library;
use tm_async::datapath::{
    reference, CompletionScheme, DatapathConfig, DatapathOptions, DualRailDatapath,
    InferenceWorkload, SingleRailDatapath,
};
use tm_async::dualrail::{ProtocolDriver, ThroughputReport};
use tm_async::gatesim::run_synchronous_vectors;
use tm_async::netlist::NetlistStats;
use tm_async::sta::{ClockPeriod, GracePeriod};
use tm_async::tsetlin::{datasets, TrainingParams, TsetlinMachine};

fn trained_machine(features: usize, clauses: usize, seed: u64) -> TsetlinMachine {
    let data = datasets::keyword_patterns(200, features, 0.1, seed);
    let params = TrainingParams::new(clauses, 10.0, 3.5).expect("valid params");
    let mut tm = TsetlinMachine::new(features, params, seed).expect("valid machine");
    tm.fit(data.train_inputs(), data.train_labels(), 15);
    tm
}

#[test]
fn trained_machine_runs_correctly_on_dual_rail_hardware() {
    let config = DatapathConfig::new(6, 6).expect("valid config");
    let machine = trained_machine(6, 6, 31);
    let data = datasets::keyword_patterns(60, 6, 0.1, 77);
    let workload = InferenceWorkload::from_machine(&config, &machine, data.test_inputs())
        .expect("machine matches config");

    let datapath = DualRailDatapath::generate(&config).expect("generation succeeds");
    let library = Library::umc_ll();
    let mut driver = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
    let operands = workload
        .dual_rail_operands(&datapath)
        .expect("widths match");

    for (operand, expected) in operands.iter().zip(workload.expected()) {
        let result = driver.apply_operand(operand).expect("protocol cycle");
        assert_eq!(
            datapath.decode_decision(&result).expect("decode"),
            expected.decision
        );
    }
}

#[test]
fn single_rail_and_dual_rail_agree_with_each_other() {
    let config = DatapathConfig::new(4, 4).expect("valid config");
    let workload = InferenceWorkload::random(&config, 10, 0.65, 5).expect("valid workload");
    let library = Library::umc_ll();

    // Dual-rail.
    let dual = DualRailDatapath::generate(&config).expect("dual-rail generation");
    let mut driver = ProtocolDriver::new(dual.circuit(), &library).expect("driver");
    let dual_decisions: Vec<_> = workload
        .dual_rail_operands(&dual)
        .expect("widths")
        .iter()
        .map(|operand| {
            let result = driver.apply_operand(operand).expect("protocol cycle");
            dual.decode_decision(&result).expect("decode")
        })
        .collect();

    // Single-rail (three clock cycles per operand: apply, capture, read).
    let single = SingleRailDatapath::generate(&config).expect("single-rail generation");
    let clock = ClockPeriod::compute(single.netlist(), &library).expect("timing");
    let mut vectors = Vec::new();
    for operand in workload.single_rail_operands(&single).expect("widths") {
        for _ in 0..3 {
            vectors.push(operand.clone());
        }
    }
    let run = run_synchronous_vectors(single.netlist(), &library, clock.period_ps(), &vectors);

    for (i, (expected, dual_decision)) in
        workload.expected().iter().zip(&dual_decisions).enumerate()
    {
        let outputs: Vec<bool> = run.outputs_per_cycle[3 * i + 2]
            .iter()
            .map(|v| v.is_one())
            .collect();
        let single_index = single
            .decode_decision_bits(&outputs)
            .expect("one-hot output");
        assert_eq!(single_index, expected.decision.one_of_three_index());
        assert_eq!(*dual_decision, expected.decision);
    }
}

#[test]
fn reduced_cd_grace_period_is_respected_by_simulation() {
    let config = DatapathConfig::new(4, 4).expect("valid config");
    let datapath = DualRailDatapath::generate(&config).expect("generation");
    let library = Library::umc_ll();
    let grace = GracePeriod::compute(
        datapath.netlist(),
        &library,
        &datapath.circuit().observed_output_nets(),
    )
    .expect("acyclic");

    let workload = InferenceWorkload::random(&config, 5, 0.6, 9).expect("workload");
    let mut driver = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
    for operand in workload.dual_rail_operands(&datapath).expect("widths") {
        let result = driver.apply_operand(&operand).expect("protocol cycle");
        // The measured reset time can never exceed the static bound used to
        // size the grace period, and the done timing covers the data.
        assert!(result.v_to_s_latency_ps <= grace.min_spacer_to_valid_ps() + 1e-6);
        assert!(result.s_to_v_latency_ps <= grace.t_io_ps() + 1e-6);
        let done = result.done_latency_ps.expect("reduced CD inserted");
        assert!(done + 1e-9 >= result.s_to_v_latency_ps);
    }
}

#[test]
fn functional_correctness_survives_deep_voltage_scaling() {
    let config = DatapathConfig::new(3, 3).expect("valid config");
    let datapath = DualRailDatapath::generate(&config).expect("generation");
    let workload = InferenceWorkload::random(&config, 4, 0.6, 17).expect("workload");
    let operands = workload.dual_rail_operands(&datapath).expect("widths");
    let base = Library::full_diffusion();

    let mut previous_average = 0.0;
    for supply in [1.2, 0.6, 0.3, 0.25] {
        let library = base.with_supply_voltage(supply).expect("supported voltage");
        let mut driver = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
        let mut results = Vec::new();
        for (operand, expected) in operands.iter().zip(workload.expected()) {
            let result = driver.apply_operand(operand).expect("protocol cycle");
            assert_eq!(
                datapath.decode_decision(&result).expect("decode"),
                expected.decision,
                "functional correctness must hold at {supply} V"
            );
            results.push(result);
        }
        let report = ThroughputReport::from_results(&results);
        assert!(
            report.average_latency_ps() > previous_average,
            "latency must increase monotonically as the supply drops"
        );
        previous_average = report.average_latency_ps();
    }
}

#[test]
fn completion_scheme_ablation_keeps_function_and_changes_cost() {
    let config = DatapathConfig::new(3, 4).expect("valid config");
    let workload = InferenceWorkload::random(&config, 6, 0.6, 23).expect("workload");
    let library = Library::umc_ll();

    let reduced = DualRailDatapath::generate(&config).expect("reduced CD");
    let full = DualRailDatapath::generate_with(
        &config,
        DatapathOptions {
            completion: CompletionScheme::Full,
            input_latches: true,
        },
    )
    .expect("full CD");
    assert!(full.completion().gates_added > reduced.completion().gates_added);

    for datapath in [&reduced, &full] {
        let mut driver = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
        for (operand, expected) in workload
            .dual_rail_operands(datapath)
            .expect("widths")
            .iter()
            .zip(workload.expected())
        {
            let result = driver.apply_operand(operand).expect("protocol cycle");
            assert_eq!(
                datapath.decode_decision(&result).expect("decode"),
                expected.decision
            );
        }
    }
}

#[test]
fn sequential_area_comes_from_latches_and_flip_flops() {
    let config = DatapathConfig::new(5, 8).expect("valid config");
    let dual = DualRailDatapath::generate(&config).expect("dual");
    let single = SingleRailDatapath::generate(&config).expect("single");
    let library = Library::umc_ll();

    let dual_stats = NetlistStats::of(dual.netlist());
    let single_stats = NetlistStats::of(single.netlist());
    // The dual-rail design has roughly twice as many sequential cells
    // (two rails per input) as the single-rail design's flip-flops.
    assert!(dual_stats.sequential_count >= 2 * config.data_input_count());
    assert_eq!(single_stats.sequential_count, config.data_input_count() + 3);
    // Both designs carry a comparable order of magnitude of cell area.
    let ratio = library.total_area_um2(dual.netlist()) / library.total_area_um2(single.netlist());
    assert!(ratio > 0.5 && ratio < 4.0, "area ratio {ratio}");
}

#[test]
fn hardware_reference_and_machine_agree_on_votes() {
    let features = 5;
    let machine = trained_machine(features, 8, 3);
    let masks = tm_async::tsetlin::ExcludeMasks::from_machine(&machine);
    for pattern in 0..(1u32 << features) {
        let input: Vec<bool> = (0..features).map(|i| pattern & (1 << i) != 0).collect();
        let outcome = reference::infer(&masks, &input);
        assert_eq!(outcome.positive_votes, machine.positive_votes(&input));
        assert_eq!(outcome.negative_votes, machine.negative_votes(&input));
        assert_eq!(outcome.in_class, machine.predict(&input));
    }
}
