//! Observability-layer invariants (PR 10): attaching the metrics
//! registry is invisible to every engine (bit-identical outcomes and
//! latencies at several thread counts), the merged engine snapshot is
//! itself thread-count invariant, and the waveform/trace artifacts are
//! byte-deterministic — the VCD against a checked-in golden fixture.

use std::sync::Arc;

use proptest::prelude::*;

use tm_async::celllib::Library;
use tm_async::datapath::{
    BatchGoldenModel, DatapathConfig, DualRailDatapath, DualRailInference, EventDrivenInference,
    InferenceWorkload,
};
use tm_async::dualrail::{Occupancy, PipelineConfig};
use tm_async::obs::MetricsRegistry;

proptest! {
    // Every case runs five engine entry points twice (with and without
    // instruments) at three thread counts, so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Attaching metrics changes nothing: for the event-driven engine
    /// (scalar and sliced) and the dual-rail engine (scalar, sliced and
    /// pipelined), the full run — outcomes, latency reports, event
    /// totals — is bit-identical to the uninstrumented run at thread
    /// counts {1, 2, 7}, and the populated registry snapshots compare
    /// equal across those thread counts.
    #[test]
    fn metrics_are_invisible_and_snapshots_are_thread_invariant(
        seed in 0u64..10_000,
        operands in 1usize..10,
    ) {
        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let library = Library::umc_ll();
        let model = BatchGoldenModel::generate(&config).expect("generation");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let pipeline = PipelineConfig { occupancy: Occupancy::Max, ..PipelineConfig::default() };

        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 7] {
            // Uninstrumented references for this thread count (the
            // cross-thread invariance of these is pinned by the
            // sharding property tests).
            let event = EventDrivenInference::new(&model, &library, threads);
            let expected_event = event.run_workload(&workload).expect("event run");
            let expected_event_sliced = event
                .run_workload_sliced(&workload)
                .expect("sliced event run");
            let dual = DualRailInference::new(&datapath, &library, threads).expect("driver");
            let expected_dual = dual.run_workload(&workload).expect("dual-rail run");
            let expected_dual_sliced = dual
                .run_workload_sliced(&workload)
                .expect("sliced dual-rail run");
            let expected_pipelined = dual
                .run_workload_pipelined(&workload, pipeline)
                .expect("pipelined dual-rail run");

            // The same engines with every instrument attached.
            let registry = Arc::new(MetricsRegistry::new());
            let mut event = EventDrivenInference::new(&model, &library, threads);
            event.set_metrics(&registry, "event");
            prop_assert_eq!(
                &event.run_workload(&workload).expect("event run"),
                &expected_event,
                "event threads {}", threads
            );
            prop_assert_eq!(
                &event.run_workload_sliced(&workload).expect("sliced event run"),
                &expected_event_sliced,
                "sliced event threads {}", threads
            );
            let mut dual = DualRailInference::new(&datapath, &library, threads).expect("driver");
            dual.set_metrics(&registry, "dualrail");
            prop_assert_eq!(
                &dual.run_workload(&workload).expect("dual-rail run"),
                &expected_dual,
                "dual-rail threads {}", threads
            );
            prop_assert_eq!(
                &dual.run_workload_sliced(&workload).expect("sliced dual-rail run"),
                &expected_dual_sliced,
                "sliced dual-rail threads {}", threads
            );
            prop_assert_eq!(
                &dual
                    .run_workload_pipelined(&workload, pipeline)
                    .expect("pipelined dual-rail run"),
                &expected_pipelined,
                "pipelined dual-rail threads {}", threads
            );

            let snapshot = registry.snapshot();
            prop_assert!(!snapshot.is_empty());
            prop_assert!(snapshot.counter("event.scalar.events_popped") > 0);
            prop_assert!(snapshot.counter("dualrail.scalar.protocol.cycles") > 0);
            snapshots.push(snapshot);
        }
        prop_assert_eq!(&snapshots[0], &snapshots[1], "threads 1 vs 2");
        prop_assert_eq!(&snapshots[0], &snapshots[2], "threads 1 vs 7");
    }
}

/// The handshake waveform capture is byte-deterministic and matches
/// the checked-in golden fixture exactly — any change to the VCD
/// writer, the standard datapath or the four-phase schedule shows up
/// as a byte diff here (regenerate with
/// `tm_async_bench::obs_capture::waveform_vcd(2021)`).
#[test]
fn handshake_vcd_matches_the_golden_fixture() {
    let vcd = tm_async_bench::obs_capture::waveform_vcd(2021);
    tm_async::obs::vcd_is_well_formed(&vcd).expect("capture must be well-formed");
    assert_eq!(
        vcd,
        include_str!("fixtures/dual_rail_handshake.vcd"),
        "VCD capture diverged from tests/fixtures/dual_rail_handshake.vcd"
    );
    assert_eq!(
        vcd,
        tm_async_bench::obs_capture::waveform_vcd(2021),
        "VCD capture must be deterministic"
    );
}

/// The serving Chrome trace is byte-deterministic under the fixed
/// service model, and parses as JSON.
#[test]
fn serve_trace_is_deterministic_json() {
    let trace = tm_async_bench::obs_capture::serve_trace_json(64, 2021);
    tm_async::obs::json_is_well_formed(&trace).expect("trace must parse");
    assert_eq!(
        trace,
        tm_async_bench::obs_capture::serve_trace_json(64, 2021),
        "trace capture must be deterministic"
    );
}
