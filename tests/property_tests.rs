//! Property-based tests on the core invariants of the reproduction:
//! dual-rail expansion preserves function, the arithmetic blocks match
//! their integer semantics, codeword encoding round-trips, and the
//! protocol driver agrees with the golden model for arbitrary operands.

use std::collections::HashMap;

use proptest::prelude::*;

use tm_async::celllib::Library;
use tm_async::datapath::{reference, DatapathConfig, DualRailDatapath};
use tm_async::dualrail::{
    expand_to_dual_rail, DualRailNetlist, DualRailSignal, DualRailValue, ExpansionStyle,
    ProtocolDriver, SpacerPolarity,
};
use tm_async::netlist::{CellKind, Evaluator, NetId, Netlist};
use tm_async::tsetlin::ExcludeMasks;

/// Evaluates a dual-rail netlist functionally for the supplied logical
/// bits and decodes one signal.
fn eval_dual(
    dr: &DualRailNetlist,
    inputs: &[(DualRailSignal, bool)],
    signal: DualRailSignal,
) -> DualRailValue {
    let eval = Evaluator::new(dr.netlist()).expect("acyclic");
    let mut map = HashMap::new();
    for (sig, bit) in inputs {
        let (p, n) = DualRailValue::encode_valid(*bit, sig.polarity);
        map.insert(sig.positive, p);
        map.insert(sig.negative, n);
    }
    let values = eval.eval(&map);
    DualRailValue::decode(
        values[signal.positive.index()].into(),
        values[signal.negative.index()].into(),
        signal.polarity,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dual-rail codeword encoding round-trips under both polarities.
    #[test]
    fn encoding_round_trips(bit: bool, all_one: bool) {
        let polarity = if all_one { SpacerPolarity::AllOne } else { SpacerPolarity::AllZero };
        let (p, n) = DualRailValue::encode_valid(bit, polarity);
        let decoded = DualRailValue::decode(p.into(), n.into(), polarity);
        prop_assert_eq!(decoded, DualRailValue::Valid(bit));
        let (sp, sn) = DualRailValue::encode_spacer(polarity);
        prop_assert_eq!(
            DualRailValue::decode(sp.into(), sn.into(), polarity),
            DualRailValue::Spacer
        );
    }

    /// The dual-rail half and full adders implement binary addition for
    /// every operand combination.
    #[test]
    fn adders_match_integer_addition(a: bool, b: bool, c: bool) {
        let mut dr = DualRailNetlist::new("adders");
        let ia = dr.add_dual_input("a");
        let ib = dr.add_dual_input("b");
        let ic = dr.add_dual_input("c");
        let (hsum, hcarry) = dr.half_adder("ha", ia, ib).expect("half adder");
        let (fsum, fcarry) = dr.full_adder("fa", ia, ib, ic).expect("full adder");

        let inputs = [(ia, a), (ib, b), (ic, c)];
        let ha_total = u32::from(a) + u32::from(b);
        prop_assert_eq!(eval_dual(&dr, &inputs, hsum), DualRailValue::Valid(ha_total % 2 == 1));
        prop_assert_eq!(eval_dual(&dr, &inputs, hcarry), DualRailValue::Valid(ha_total >= 2));
        let fa_total = ha_total + u32::from(c);
        prop_assert_eq!(eval_dual(&dr, &inputs, fsum), DualRailValue::Valid(fa_total % 2 == 1));
        prop_assert_eq!(eval_dual(&dr, &inputs, fcarry), DualRailValue::Valid(fa_total >= 2));
    }

    /// Automatic dual-rail expansion preserves the function of arbitrary
    /// three-level unate netlists, in both expansion styles.
    #[test]
    fn expansion_preserves_function(
        kinds in proptest::collection::vec(0usize..6, 3),
        pattern in 0u32..16,
        inverting: bool,
    ) {
        let gate = |k: usize| match k {
            0 => CellKind::And2,
            1 => CellKind::Or2,
            2 => CellKind::Nand2,
            3 => CellKind::Nor2,
            4 => CellKind::And3,
            _ => CellKind::Or3,
        };
        // Build a small random netlist: four inputs, three gates chained.
        let mut nl = Netlist::new("random");
        let inputs: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let g0_kind = gate(kinds[0] % 4); // two-input kinds only for the first gate
        let g0 = nl.add_cell("g0", g0_kind, &[inputs[0], inputs[1]]).expect("g0");
        let g1_kind = gate(kinds[1]);
        let g1_inputs: Vec<NetId> = match g1_kind.input_count() {
            2 => vec![g0, inputs[2]],
            _ => vec![g0, inputs[2], inputs[3]],
        };
        let g1 = nl.add_cell("g1", g1_kind, &g1_inputs).expect("g1");
        let g2_kind = gate(kinds[2] % 4);
        let g2 = nl.add_cell("g2", g2_kind, &[g1, inputs[0]]).expect("g2");
        nl.add_output("y", g2);

        let style = if inverting {
            ExpansionStyle::InvertingPairs
        } else {
            ExpansionStyle::NonInverting
        };
        let dr = expand_to_dual_rail(&nl, style).expect("expansion");

        let bits: Vec<bool> = (0..4).map(|i| pattern & (1 << i) != 0).collect();
        let single_eval = Evaluator::new(&nl).expect("acyclic");
        let expected = single_eval.eval_vector(&bits)[0];

        let dr_inputs: Vec<(DualRailSignal, bool)> = dr
            .dual_inputs()
            .iter()
            .map(|(_, s)| *s)
            .zip(bits.iter().copied())
            .collect();
        let output = dr.dual_output("y").expect("output exists");
        prop_assert_eq!(eval_dual(&dr, &dr_inputs, output), DualRailValue::Valid(expected));
    }

    /// The software reference model obeys the defining equations of the
    /// Tsetlin machine vote for random masks and inputs.
    #[test]
    fn reference_votes_are_bounded_and_consistent(
        seed in 0u64..1_000,
        pattern in 0u32..256,
    ) {
        let config = DatapathConfig::new(8, 8).expect("valid");
        let workload = tm_async::datapath::InferenceWorkload::random(&config, 1, 0.7, seed)
            .expect("workload");
        let features: Vec<bool> = (0..8).map(|i| pattern & (1 << i) != 0).collect();
        let outcome = reference::infer(workload.masks(), &features);
        prop_assert!(outcome.positive_votes <= 8);
        prop_assert!(outcome.negative_votes <= 8);
        let expected_in_class = outcome.positive_votes >= outcome.negative_votes;
        prop_assert_eq!(outcome.in_class, expected_in_class);
    }
}

proptest! {
    // The full hardware round trip is expensive (event-driven simulation
    // of a few thousand cells), so run fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary masks and feature vectors, the dual-rail hardware
    /// decision equals the software golden model, and the latency figures
    /// are internally consistent.
    #[test]
    fn hardware_matches_golden_model(
        mask_bits in proptest::collection::vec(any::<bool>(), 4 * 2 * 3),
        feature_bits in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let config = DatapathConfig::new(3, 2).expect("valid");
        let positive: Vec<Vec<bool>> = mask_bits[0..12].chunks(6).map(<[bool]>::to_vec).collect();
        let negative: Vec<Vec<bool>> = mask_bits[12..24].chunks(6).map(<[bool]>::to_vec).collect();
        let masks = ExcludeMasks::from_raw(positive, negative, 3);
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();
        let mut driver = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");

        let operand = datapath.operand_bits(&feature_bits, &masks).expect("widths");
        let result = driver.apply_operand(&operand).expect("protocol cycle");
        let golden = reference::infer(&masks, &feature_bits);
        prop_assert_eq!(datapath.decode_decision(&result).expect("decode"), golden.decision);
        prop_assert!(result.s_to_v_latency_ps > 0.0);
        prop_assert!(result.cycle_time_ps >= result.s_to_v_latency_ps + result.v_to_s_latency_ps);
    }
}

// ---------------------------------------------------------------------
// Bit-parallel batch evaluation: BatchEvaluator ≡ scalar Evaluator
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 64-wide batch evaluator is bit-identical, lane for lane, to
    /// the scalar evaluator on randomized layered netlists, including
    /// sequential (C-element and DFF) state carried across passes.
    #[test]
    fn batch_evaluator_matches_scalar_on_random_netlists(
        kinds in proptest::collection::vec(0usize..8, 12),
        stimulus_words in proptest::collection::vec(any::<u64>(), 3 * 4),
    ) {
        use tm_async::netlist::{BatchEvaluator, EvalState};
        use std::collections::HashMap;

        let gate = |k: usize| match k {
            0 => CellKind::And2,
            1 => CellKind::Or2,
            2 => CellKind::Nand2,
            3 => CellKind::Nor2,
            4 => CellKind::Xor2,
            5 => CellKind::Aoi21,
            6 => CellKind::CElement2,
            _ => CellKind::Dff,
        };

        // Four primary inputs, then twelve cells; each cell draws its
        // inputs from the most recent nets so depth grows with index.
        let mut nl = Netlist::new("random_batch");
        let mut pool: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        for (idx, &k) in kinds.iter().enumerate() {
            let kind = gate(k);
            let n = pool.len();
            let ins: Vec<NetId> = (0..kind.input_count())
                .map(|p| pool[(idx + p * 3) % n])
                .collect();
            let out = nl.add_cell(format!("g{idx}"), kind, &ins).expect("cell");
            pool.push(out);
        }
        let last = *pool.last().expect("nonempty");
        nl.add_output("y", last);

        let scalar = Evaluator::new(&nl).expect("acyclic by construction");
        let batch = BatchEvaluator::new(&nl).expect("acyclic by construction");
        let pis = nl.primary_inputs();

        let mut batch_state = batch.new_state();
        let mut values = Vec::new();
        let mut scalar_states: Vec<EvalState> = (0..8).map(|_| EvalState::new()).collect();

        // Four passes of fresh stimulus; sequential state must stay in
        // sync between the scalar and batch models on every pass.
        for pass in 0..4 {
            let words: Vec<u64> = (0..4)
                .map(|i| stimulus_words[(pass * 3 + i) % stimulus_words.len()])
                .collect();
            let outs = batch.eval_words(&words, &mut batch_state, &mut values);

            // Spot-check 8 of the 64 lanes (scalar evaluation is the
            // slow part; the lanes are independent by construction).
            for (lane, scalar_state) in scalar_states.iter_mut().enumerate() {
                let map: HashMap<NetId, bool> = pis
                    .iter()
                    .zip(&words)
                    .map(|(&net, &w)| (net, (w >> lane) & 1 == 1))
                    .collect();
                let expected = scalar.eval_with_state(&map, scalar_state);
                prop_assert_eq!(
                    (outs[0] >> lane) & 1 == 1,
                    expected[last.index()],
                    "pass {} lane {} diverged",
                    pass,
                    lane
                );
            }
        }
    }

    /// Packing samples into lanes and back is lossless.
    #[test]
    fn lane_packing_round_trips(
        samples in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 9), 17),
    ) {
        use tm_async::netlist::{pack_lanes, unpack_lane};
        let words = pack_lanes(&samples);
        prop_assert_eq!(words.len(), 9);
        for (lane, sample) in samples.iter().enumerate() {
            prop_assert_eq!(&unpack_lane(&words, lane), sample);
        }
    }
}

proptest! {
    // Full-workload equivalence is heavier (netlist generation + training
    // -free random masks), so run fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched golden model agrees with the software reference (and
    /// therefore with the scalar netlist evaluator, which the datapath
    /// unit tests pin to the same reference) on arbitrary workloads.
    #[test]
    fn batch_inference_matches_reference_on_random_workloads(
        seed in 0u64..10_000,
        operands in 1usize..130,
    ) {
        use tm_async::datapath::{BatchGoldenModel, BatchInference, InferenceWorkload};

        let config = DatapathConfig::new(6, 4).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let model = BatchGoldenModel::generate(&config).expect("generation");
        let mut batch = BatchInference::new(&model).expect("flattening");
        let outcomes = batch.run_workload(&workload).expect("batched run");
        prop_assert_eq!(outcomes.as_slice(), workload.expected());
    }
}

// ---------------------------------------------------------------------
// Multi-threaded batch evaluation: ParallelBatchEvaluator ≡
// BatchEvaluator ≡ scalar Evaluator at every thread count
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharding whole 64-lane word groups across worker threads changes
    /// nothing: the parallel evaluator is bit-identical to the
    /// single-threaded batch evaluator (and therefore to the scalar
    /// evaluator) on random sequential netlists, at thread counts
    /// {1, 2, 7}, with per-group state carried across passes.
    #[test]
    fn parallel_batch_matches_single_thread_on_random_netlists(
        kinds in proptest::collection::vec(0usize..8, 10),
        stimulus_words in proptest::collection::vec(any::<u64>(), 4 * 3),
    ) {
        use tm_async::netlist::{BatchEvaluator, ParallelBatchEvaluator};

        let gate = |k: usize| match k {
            0 => CellKind::And2,
            1 => CellKind::Or2,
            2 => CellKind::Nand2,
            3 => CellKind::Nor2,
            4 => CellKind::Xor2,
            5 => CellKind::Aoi21,
            6 => CellKind::CElement2,
            _ => CellKind::Dff,
        };
        let mut nl = Netlist::new("random_parallel");
        let mut pool: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        for (idx, &k) in kinds.iter().enumerate() {
            let kind = gate(k);
            let n = pool.len();
            let ins: Vec<NetId> = (0..kind.input_count())
                .map(|p| pool[(idx + p * 3) % n])
                .collect();
            let out = nl.add_cell(format!("g{idx}"), kind, &ins).expect("cell");
            pool.push(out);
        }
        nl.add_output("y", *pool.last().expect("nonempty"));

        // Three groups of four input words each; reference run is the
        // single-threaded batch evaluator, group by group, two passes so
        // per-group sequential state must be carried correctly.
        let reference = BatchEvaluator::new(&nl).expect("acyclic");
        let mut ref_states: Vec<_> = (0..3).map(|_| reference.new_state()).collect();
        let mut values = Vec::new();
        for pass in 0..2 {
            let groups: Vec<Vec<u64>> = (0..3)
                .map(|g| (0..4).map(|i| stimulus_words[(pass * 3 + g + i) % stimulus_words.len()]).collect())
                .collect();
            let expected: Vec<Vec<u64>> = groups
                .iter()
                .zip(ref_states.iter_mut())
                .map(|(words, state)| reference.eval_words(words, state, &mut values))
                .collect();

            for threads in [1usize, 2, 7] {
                let parallel = ParallelBatchEvaluator::new(&nl, threads).expect("acyclic");
                // Re-derive this pass's starting states by replaying the
                // previous passes sequentially.
                let mut states: Vec<_> = (0..3).map(|_| parallel.inner().new_state()).collect();
                let mut scratch = Vec::new();
                for prev in 0..pass {
                    let prev_groups: Vec<Vec<u64>> = (0..3)
                        .map(|g| (0..4).map(|i| stimulus_words[(prev * 3 + g + i) % stimulus_words.len()]).collect())
                        .collect();
                    for (words, state) in prev_groups.iter().zip(states.iter_mut()) {
                        parallel.inner().eval_words(words, state, &mut scratch);
                    }
                }
                let outs = parallel.eval_word_groups(&groups, &mut states);
                prop_assert_eq!(&outs, &expected, "pass {} threads {}", pass, threads);
                prop_assert_eq!(&states, &ref_states, "pass {} threads {} state", pass, threads);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The multi-threaded workload runtime agrees with the
    /// single-threaded batch path and the software reference on
    /// arbitrary workloads, at thread counts {1, 2, 7}.
    #[test]
    fn parallel_workload_matches_single_thread_and_reference(
        seed in 0u64..10_000,
        operands in 1usize..200,
    ) {
        use tm_async::datapath::{
            BatchGoldenModel, BatchInference, InferenceWorkload, ParallelBatchInference,
        };

        let config = DatapathConfig::new(6, 4).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let model = BatchGoldenModel::generate(&config).expect("generation");
        let mut single = BatchInference::new(&model).expect("flattening");
        let expected = single.run_workload(&workload).expect("single-thread run");
        prop_assert_eq!(expected.as_slice(), workload.expected());

        for threads in [1usize, 2, 7] {
            let parallel = ParallelBatchInference::new(&model, threads).expect("flattening");
            let outcomes = parallel.run_workload(&workload).expect("parallel run");
            prop_assert_eq!(&outcomes, &expected, "threads {}", threads);
        }
    }
}

// ---------------------------------------------------------------------
// Sharded event-driven simulation: ParallelEventSim ≡ one streamed
// Simulator instance at every thread count, outputs and latencies alike
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying independent return-to-zero operand cycles on replicated
    /// engine instances changes nothing: outputs, injection latencies
    /// and event counts are bit-identical to streaming the same operands
    /// through a single simulator, at thread counts {1, 2, 7}, on random
    /// combinational netlists.
    #[test]
    fn parallel_event_sim_matches_streamed_instance(
        kinds in proptest::collection::vec(0usize..6, 10),
        patterns in proptest::collection::vec(0u32..16, 12),
    ) {
        use tm_async::gatesim::{run_return_to_zero, LatencyReport, ParallelEventSim, Simulator};

        let gate = |k: usize| match k {
            0 => CellKind::And2,
            1 => CellKind::Or2,
            2 => CellKind::Nand2,
            3 => CellKind::Nor2,
            4 => CellKind::Xor2,
            _ => CellKind::Aoi21,
        };
        // Four primary inputs, then a layered cone of combinational
        // cells (no C-elements/flip-flops: sharding requires a
        // history-independent spacer state).
        let mut nl = Netlist::new("random_event");
        let mut pool: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        for (idx, &k) in kinds.iter().enumerate() {
            let kind = gate(k);
            let n = pool.len();
            let ins: Vec<NetId> = (0..kind.input_count())
                .map(|p| pool[(idx + p * 3) % n])
                .collect();
            let out = nl.add_cell(format!("g{idx}"), kind, &ins).expect("cell");
            pool.push(out);
        }
        nl.add_output("y", *pool.last().expect("nonempty"));

        let operands: Vec<Vec<bool>> = patterns
            .iter()
            .map(|&p| (0..4).map(|b| p & (1 << b) != 0).collect())
            .collect();

        // Streamed single-instance reference: the same protocol, one
        // simulator, operand after operand.
        let library = Library::umc_ll();
        let mut streamed = Simulator::new(&nl, &library);
        let expected: Vec<_> = operands
            .iter()
            .map(|operand| run_return_to_zero(&mut streamed, operand))
            .collect();
        let expected_report = LatencyReport::from_runs(&expected);

        for threads in [1usize, 2, 7] {
            let sim = ParallelEventSim::new(&nl, &library, threads);
            let (runs, report) = sim.run_operands_with_report(&operands);
            prop_assert_eq!(&runs, &expected, "threads {}", threads);
            prop_assert_eq!(&report, &expected_report, "threads {}", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sharded event-driven inference path agrees with the software
    /// golden model on arbitrary workloads and produces bit-identical
    /// outcomes *and* latency reports at thread counts {1, 2, 7}.
    #[test]
    fn event_driven_inference_matches_golden_and_thread_count_is_invisible(
        seed in 0u64..10_000,
        operands in 1usize..24,
    ) {
        use tm_async::datapath::{BatchGoldenModel, EventDrivenInference, InferenceWorkload};

        let config = DatapathConfig::new(4, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let model = BatchGoldenModel::generate(&config).expect("generation");
        let library = Library::umc_ll();

        let reference = EventDrivenInference::new(&model, &library, 1)
            .run_workload(&workload)
            .expect("event-driven run");
        prop_assert_eq!(reference.outcomes.as_slice(), workload.expected());
        prop_assert_eq!(reference.latency.count(), workload.len());

        for threads in [2usize, 7] {
            let run = EventDrivenInference::new(&model, &library, threads)
                .run_workload(&workload)
                .expect("event-driven run");
            prop_assert_eq!(&run, &reference, "threads {}", threads);
        }
    }
}

// ---------------------------------------------------------------------
// Sharded dual-rail protocol driving: ParallelProtocolDriver ≡ one
// streamed contract-mode ProtocolDriver at every thread count — decoded
// outputs, s→v / v→s latencies and done latencies alike
// ---------------------------------------------------------------------

proptest! {
    // Each case simulates a full dual-rail datapath through four-phase
    // cycles at four thread counts, so run few cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sharding a dual-rail operand stream under the verified
    /// reset-phase contract changes nothing: every per-operand
    /// measurement (decoded outputs, spacer→valid, valid→spacer and
    /// done latencies, cycle times, probe values) is bit-identical to
    /// streaming the same operands through a single contract-mode
    /// driver, at thread counts {1, 2, 7}, for arbitrary masks and
    /// features — and the decoded outcomes match the software golden
    /// model.
    #[test]
    fn sharded_dual_rail_driver_matches_streamed_contract_driver(
        seed in 0u64..10_000,
        operands in 1usize..14,
    ) {
        use tm_async::datapath::{DualRailInference, InferenceWorkload};
        use tm_async::dualrail::ParallelProtocolDriver;
        use tm_async::gatesim::LatencyReport;

        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();
        let operand_bits = workload.dual_rail_operands(&datapath).expect("widths");

        // Streamed single-driver reference in contract mode: the exact
        // per-operand code path the workers replay, on one instance.
        let mut streamed = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
        let snapshot = streamed.quiescent_snapshot();
        streamed.enable_reset_contract(snapshot);
        let expected: Vec<_> = operand_bits
            .iter()
            .map(|operand| streamed.apply_operand(operand).expect("protocol cycle"))
            .collect();
        let expected_latency = LatencyReport::from_latencies(
            expected.iter().map(|r| r.s_to_v_latency_ps).collect(),
        );
        let expected_done: Option<Vec<f64>> =
            expected.iter().map(|r| r.done_latency_ps).collect();
        let expected_done = expected_done.expect("completion detection present");

        for threads in [1usize, 2, 7] {
            let driver = ParallelProtocolDriver::new(datapath.circuit(), &library, threads)
                .expect("driver");
            let run = driver.run_workload(&operand_bits).expect("sharded run");
            prop_assert_eq!(&run.results, &expected, "threads {}", threads);
            prop_assert_eq!(&run.latency, &expected_latency, "threads {}", threads);
            let done = run.done_latency().expect("done present on every operand");
            prop_assert_eq!(done.latencies_ps(), expected_done.as_slice(), "threads {}", threads);

            // The inference-level wrapper decodes the same results into
            // golden-comparable outcomes.
            let inference = DualRailInference::new(&datapath, &library, threads).expect("driver");
            let run = inference.run_workload(&workload).expect("inference run");
            prop_assert_eq!(run.outcomes.as_slice(), workload.expected(), "threads {}", threads);
            prop_assert_eq!(&run.results, &expected, "threads {}", threads);
        }
    }
}

// ---------------------------------------------------------------------
// Two-level event queue: same-timestamp FIFO order is exactly the
// insertion order, under arbitrary interleaved push/pop traffic
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved pushes and pops at equal `time_ps` pop in sequence
    /// order — the invariant the two-level drain tier relies on.  Times
    /// are drawn from a tiny set so most events collide; `ops` drives
    /// the push/pop interleaving.
    #[test]
    fn event_queue_equal_times_pop_in_sequence_order(
        ops in proptest::collection::vec(0u8..12, 150),
    ) {
        use tm_async::gatesim::{Event, EventQueue, Logic};
        use tm_async::netlist::NetId;

        let mut queue = EventQueue::new();
        // (time, insertion id) pairs still pending, in push order.
        let mut pending: Vec<(f64, usize)> = Vec::new();
        let mut next_id = 0usize;
        for op in ops {
            let (kind, time_code) = (op % 4, op / 4);
            if kind < 3 {
                let time_ps = f64::from(time_code) * 10.0;
                queue.push(Event {
                    time_ps,
                    net: NetId::from_index(next_id),
                    value: Logic::One,
                });
                pending.push((time_ps, next_id));
                next_id += 1;
            } else if let Some(event) = queue.pop() {
                // The expected pop: earliest time, then earliest insertion.
                let best = pending
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(i, _)| i)
                    .expect("queue and model agree on emptiness");
                let (time_ps, id) = pending.remove(best);
                prop_assert_eq!(event.time_ps, time_ps);
                prop_assert_eq!(event.net.index(), id);
            } else {
                prop_assert!(pending.is_empty());
            }
        }
        // Drain the rest: must come out in exact (time, sequence) order.
        while let Some(event) = queue.pop() {
            let best = pending
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(i, _)| i)
                .expect("model non-empty");
            let (time_ps, id) = pending.remove(best);
            prop_assert_eq!(event.time_ps, time_ps);
            prop_assert_eq!(event.net.index(), id);
        }
        prop_assert!(pending.is_empty());
    }

    /// C-element transient regression: the two-level queue's tier
    /// layout is a pure performance choice.  Two simulators with
    /// radically different bucket granularities (one forcing almost all
    /// traffic through the overflow heap) must process random stimulus
    /// into identical settled values, transition counts and timestamps —
    /// including state-holding C-elements, which are sensitive to the
    /// exact order of applied transients.
    #[test]
    fn c_element_transients_are_invariant_to_queue_granularity(
        patterns in proptest::collection::vec(0u32..8, 10),
    ) {
        use tm_async::celllib::Library;
        use tm_async::gatesim::Simulator;

        // Mixed combinational/C-element netlist: the C-elements see
        // glitchy internal nets, so transient ordering matters.
        let mut nl = Netlist::new("celem_transients");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_cell("and", CellKind::And2, &[a, b]).expect("cell");
        let bc = nl.add_cell("nor", CellKind::Nor2, &[b, c]).expect("cell");
        let cel1 = nl.add_cell("cel1", CellKind::CElement2, &[ab, bc]).expect("cell");
        let cel2 = nl.add_cell("cel2", CellKind::CElement2, &[cel1, c]).expect("cell");
        nl.add_output("cel1", cel1);
        nl.add_output("cel2", cel2);

        let library = Library::umc_ll();
        // Default granularity vs. a pathological one (nearly everything
        // spills to the overflow heap).
        let mut reference = Simulator::new(&nl, &library);
        let mut stressed = Simulator::new_with_queue_granularity(&nl, &library, 0.125, 1);

        for pattern in patterns {
            let bits = [pattern & 1 != 0, pattern & 2 != 0, pattern & 4 != 0];
            for sim in [&mut reference, &mut stressed] {
                sim.set_input_bool(a, bits[0]);
                sim.set_input_bool(b, bits[1]);
                sim.set_input_bool(c, bits[2]);
                prop_assert!(sim.run_until_quiescent().is_quiescent());
            }
            prop_assert_eq!(reference.now_ps(), stressed.now_ps());
            for (net, _) in nl.nets() {
                prop_assert_eq!(
                    reference.value(net),
                    stressed.value(net),
                    "net {} diverged at pattern {:#b}",
                    net,
                    pattern
                );
                prop_assert_eq!(reference.net_transitions(net), stressed.net_transitions(net));
                prop_assert_eq!(reference.last_change_ps(net), stressed.last_change_ps(net));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Serving layer: served outcomes ≡ offline golden outcomes for every
// backend, and the whole report is thread-count-invariant under a fixed
// service model
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Micro-batched serving of the lane backends (batch and parallel
    /// batch) delivers exactly the workload's golden outcomes for every
    /// served request, under arbitrary traffic and either admission
    /// policy — and with a fixed service model the *entire report*
    /// (shed set, batch composition, every latency figure) is
    /// bit-identical at backend thread counts {1, 2, 7}.
    #[test]
    fn served_lane_backends_match_golden_and_threads_are_invisible(
        seed in 0u64..10_000,
        requests in 1usize..160,
        qps_exp in 0u32..4,
        capacity in 0usize..100,
        block in any::<bool>(),
    ) {
        use tm_async::datapath::{BatchGoldenModel, InferenceWorkload};
        use tm_async::serve::{
            AdmissionPolicy, BatchBackend, ParallelBatchBackend, ServeConfig, Server,
            ServiceModel, Trace,
        };

        let config = DatapathConfig::new(5, 4).expect("valid");
        let workload = InferenceWorkload::random(&config, 24, 0.7, seed).expect("workload");
        let model = BatchGoldenModel::generate(&config).expect("generation");
        // Offered load sweeps 0.1x .. 100x around the fixed service rate.
        let trace = Trace::poisson(requests, 1e5 * 10f64.powi(qps_exp as i32), seed ^ 77);
        let serve_config = ServeConfig {
            queue_capacity: capacity,
            policy: if block { AdmissionPolicy::Block } else { AdmissionPolicy::Shed },
            max_batch: 64,
            max_wait_ns: 2_000,
            service_model: ServiceModel::Fixed { batch_ns: 400, per_request_ns: 25 },
            deadline_ns: None,
        };

        let backend = BatchBackend::new(&model, workload.masks().clone()).expect("backend");
        let reference = Server::new(backend, &workload, serve_config)
            .expect("server")
            .run(&trace)
            .expect("serve run");
        prop_assert_eq!(reference.served_count() + reference.shed_count(), requests);
        if block {
            prop_assert_eq!(reference.shed_count(), 0, "block policy never sheds");
        }
        // Every served outcome is the golden outcome of its sample (the
        // server also verifies this internally before returning).
        for record in &reference.served {
            prop_assert_eq!(&record.outcome, workload.sample(record.sample).expected);
        }

        // The parallel-batch backend at several thread counts: the full
        // report — not just outcomes — must be bit-identical.
        for threads in [1usize, 2, 7] {
            let backend =
                ParallelBatchBackend::new(&model, workload.masks().clone(), threads)
                    .expect("backend");
            let report = Server::new(backend, &workload, serve_config)
                .expect("server")
                .run(&trace)
                .expect("serve run");
            prop_assert_eq!(&report, &reference, "threads {}", threads);
        }
    }
}

proptest! {
    // Event-driven and dual-rail backends simulate every request at
    // gate level across three thread counts each — keep the case count
    // and request counts small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Serving through the event-driven and dual-rail simulation
    /// backends also reproduces the golden outcomes exactly, with
    /// thread-count-invariant reports under a fixed service model —
    /// the serving layer composes with the reset-phase sharding
    /// contract unchanged.
    #[test]
    fn served_simulation_backends_match_golden_and_threads_are_invisible(
        seed in 0u64..10_000,
        requests in 1usize..12,
    ) {
        use tm_async::datapath::{BatchGoldenModel, InferenceWorkload};
        use tm_async::serve::{
            Backend, DualRailBackend, EventDrivenBackend, ServeConfig, Server, ServeReport,
            ServiceModel, Trace,
        };

        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, 8, 0.6, seed).expect("workload");
        let model = BatchGoldenModel::generate(&config).expect("generation");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();
        let trace = Trace::bursty(requests, 3, 1e6, seed ^ 3);
        let serve_config = ServeConfig {
            max_wait_ns: 1_500,
            service_model: ServiceModel::Fixed { batch_ns: 900, per_request_ns: 120 },
            ..ServeConfig::default()
        };

        let run = |backend: Box<dyn Backend + Send>| -> ServeReport {
            let mut server = Server::new(backend, &workload, serve_config).expect("server");
            server.run(&trace).expect("serve run")
        };

        for backend_kind in ["event_driven", "dual_rail"] {
            let mut reference: Option<ServeReport> = None;
            for threads in [1usize, 2, 7] {
                let backend: Box<dyn Backend + Send> = match backend_kind {
                    "event_driven" => Box::new(
                        EventDrivenBackend::new(
                            &model, &library, workload.masks().clone(), threads,
                        )
                        .expect("backend"),
                    ),
                    _ => Box::new(
                        DualRailBackend::new(
                            &datapath, &library, workload.masks().clone(), threads,
                        )
                        .expect("backend"),
                    ),
                };
                let report = run(backend);
                for record in &report.served {
                    prop_assert_eq!(
                        &record.outcome,
                        workload.sample(record.sample).expected,
                        "{} backend served a non-golden outcome",
                        backend_kind
                    );
                }
                match &reference {
                    None => reference = Some(report),
                    Some(expected) => prop_assert_eq!(
                        &report, expected, "{} threads {}", backend_kind, threads
                    ),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 64-wide bit-sliced three-valued event simulation: every lane of a
// sliced word ≡ the streamed scalar engine, end to end
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Each lane of the bit-sliced kernel reproduces the streamed
    /// scalar simulator bit for bit on random combinational netlists:
    /// settled outputs, injection→settle latencies and per-lane event
    /// counts.  The lane count is drawn from the full 1..=64 range, so
    /// partial final words (width 1 and width 63 included) are
    /// exercised, and every word starts from the all-X reset (a fresh
    /// sliced instance holds every lane Unknown until the first spacer
    /// settles it).
    #[test]
    fn sliced_lanes_match_the_streamed_scalar_simulator(
        kinds in proptest::collection::vec(0usize..6, 10),
        stimulus_words in proptest::collection::vec(any::<u64>(), 4),
        lanes in 1usize..=64,
    ) {
        use tm_async::gatesim::{
            run_return_to_zero, run_word_return_to_zero, Simulator, SlicedSimulator,
        };

        let gate = |k: usize| match k {
            0 => CellKind::And2,
            1 => CellKind::Or2,
            2 => CellKind::Nand2,
            3 => CellKind::Nor2,
            4 => CellKind::Xor2,
            _ => CellKind::Aoi21,
        };
        let mut nl = Netlist::new("random_sliced");
        let mut pool: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        for (idx, &k) in kinds.iter().enumerate() {
            let kind = gate(k);
            let n = pool.len();
            let ins: Vec<NetId> = (0..kind.input_count())
                .map(|p| pool[(idx + p * 3) % n])
                .collect();
            let out = nl.add_cell(format!("g{idx}"), kind, &ins).expect("cell");
            pool.push(out);
        }
        nl.add_output("y", *pool.last().expect("nonempty"));

        // Operand `lane` takes input bit i from stimulus word i.
        let operands: Vec<Vec<bool>> = (0..lanes)
            .map(|lane| stimulus_words.iter().map(|w| w >> lane & 1 != 0).collect())
            .collect();

        let library = Library::umc_ll();
        let mut scalar = Simulator::new(&nl, &library);
        let expected: Vec<_> = operands
            .iter()
            .map(|operand| run_return_to_zero(&mut scalar, operand))
            .collect();

        let mut sliced = SlicedSimulator::new(&nl, &library);
        let runs = run_word_return_to_zero(&mut sliced, &operands);
        prop_assert_eq!(&runs, &expected, "lanes {}", lanes);
    }
}

proptest! {
    // The engines below simulate at gate level, so keep case and
    // operand counts small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The bit-sliced event-driven inference engine is bit-identical to
    /// the streamed scalar engine on arbitrary workloads — the whole
    /// run (outcomes, per-operand latency distribution, event totals),
    /// not just outcomes — at thread counts {1, 2, 7}.  Operand counts
    /// above 64 exercise multi-word sharding with a partial final word.
    #[test]
    fn sliced_event_engine_matches_scalar_on_random_workloads(
        seed in 0u64..10_000,
        operands in 1usize..100,
    ) {
        use tm_async::datapath::{BatchGoldenModel, EventDrivenInference, InferenceWorkload};

        let config = DatapathConfig::new(4, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let model = BatchGoldenModel::generate(&config).expect("generation");
        let library = Library::umc_ll();

        let reference = EventDrivenInference::new(&model, &library, 1)
            .run_workload(&workload)
            .expect("scalar event-driven run");
        prop_assert_eq!(reference.outcomes.as_slice(), workload.expected());

        for threads in [1usize, 2, 7] {
            let engine = EventDrivenInference::new(&model, &library, threads);
            let run = engine
                .run_workload_sliced(&workload)
                .expect("sliced event-driven run");
            prop_assert_eq!(&run, &reference, "threads {}", threads);
        }
    }

    /// The bit-sliced dual-rail driver reproduces the streamed contract
    /// driver's golden outcomes and its exact per-operand spacer→valid
    /// and `done` latencies on arbitrary workloads, and the full run is
    /// invariant across thread counts {1, 2, 7}.  (The sliced timebase
    /// is phase-rebased, so `valid→spacer` and cycle-time figures may
    /// differ from the plain streamed driver in the last ULPs — the
    /// dedicated unit tests bound that drift; everything asserted here
    /// is bit-exact.)
    #[test]
    fn sliced_dual_rail_matches_the_streamed_contract_driver(
        seed in 0u64..10_000,
        operands in 1usize..10,
    ) {
        use tm_async::datapath::{DualRailInference, InferenceWorkload};

        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.6, seed).expect("workload");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();

        let scalar = DualRailInference::new(&datapath, &library, 1)
            .expect("driver")
            .run_workload(&workload)
            .expect("scalar dual-rail run");
        prop_assert_eq!(scalar.outcomes.as_slice(), workload.expected());

        let mut reference = None;
        for threads in [1usize, 2, 7] {
            let engine = DualRailInference::new(&datapath, &library, threads).expect("driver");
            let run = engine
                .run_workload_sliced(&workload)
                .expect("sliced dual-rail run");
            prop_assert_eq!(run.outcomes.as_slice(), workload.expected());
            prop_assert_eq!(&run.latency, &scalar.latency, "threads {}", threads);
            prop_assert_eq!(&run.done_latency, &scalar.done_latency, "threads {}", threads);
            match &reference {
                None => reference = Some(run),
                Some(expected) => prop_assert_eq!(&run, expected, "threads {}", threads),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault overlay: an *empty* FaultPlan is invisible — every engine's runs
// are bit-identical to a healthy instance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Installing an empty [`FaultPlan`] changes nothing: the scalar
    /// simulator, the 64-wide bit-sliced simulator and both sharded
    /// fault entry points (per-operand and per-word, at thread counts
    /// {1, 2, 7}) produce runs bit-identical — outputs, latencies and
    /// event counts — to the same engine with no plan installed, on
    /// random combinational netlists.  This is the contract that lets
    /// the fault campaign share one code path for healthy and faulted
    /// sweeps.
    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan(
        kinds in proptest::collection::vec(0usize..6, 8),
        patterns in proptest::collection::vec(0u32..16, 10),
    ) {
        use tm_async::gatesim::{
            run_return_to_zero, run_word_return_to_zero, FaultPlan, ParallelEventSim, Simulator,
            SlicedSimulator,
        };

        let gate = |k: usize| match k {
            0 => CellKind::And2,
            1 => CellKind::Or2,
            2 => CellKind::Nand2,
            3 => CellKind::Nor2,
            4 => CellKind::Xor2,
            _ => CellKind::Aoi21,
        };
        let mut nl = Netlist::new("random_faultfree");
        let mut pool: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        for (idx, &k) in kinds.iter().enumerate() {
            let kind = gate(k);
            let n = pool.len();
            let ins: Vec<NetId> = (0..kind.input_count())
                .map(|p| pool[(idx + p * 3) % n])
                .collect();
            let out = nl.add_cell(format!("g{idx}"), kind, &ins).expect("cell");
            pool.push(out);
        }
        nl.add_output("y", *pool.last().expect("nonempty"));

        let operands: Vec<Vec<bool>> = patterns
            .iter()
            .map(|&p| (0..4).map(|b| p & (1 << b) != 0).collect())
            .collect();
        let empty = FaultPlan::new();
        prop_assert!(empty.is_empty());
        let library = Library::umc_ll();

        // Scalar engine: healthy stream vs empty-plan stream.
        let mut healthy = Simulator::new(&nl, &library);
        let expected: Vec<_> = operands
            .iter()
            .map(|operand| run_return_to_zero(&mut healthy, operand))
            .collect();
        let mut overlaid = Simulator::new(&nl, &library);
        overlaid.set_fault_plan(&empty);
        let got: Vec<_> = operands
            .iter()
            .map(|operand| run_return_to_zero(&mut overlaid, operand))
            .collect();
        prop_assert_eq!(&got, &expected, "scalar");

        // Bit-sliced engine: one word carrying every operand.
        let mut healthy_sliced = SlicedSimulator::new(&nl, &library);
        let expected_sliced = run_word_return_to_zero(&mut healthy_sliced, &operands);
        let mut overlaid_sliced = SlicedSimulator::new(&nl, &library);
        overlaid_sliced.set_fault_plan(&empty);
        let got_sliced = run_word_return_to_zero(&mut overlaid_sliced, &operands);
        prop_assert_eq!(&got_sliced, &expected_sliced, "sliced");

        // Sharded engines: the faulted entry points with an empty plan
        // and no horizon must match the plain ones at every thread
        // count, per-operand and per-word alike.
        for threads in [1usize, 2, 7] {
            let sim = ParallelEventSim::new(&nl, &library, threads);

            let baseline = sim.run_operands(&operands);
            let faulted: Vec<_> = sim
                .run_operands_faulted(&operands, &empty, None)
                .into_iter()
                .collect::<Result<_, _>>()
                .expect("an empty plan cannot trip the watchdog");
            prop_assert_eq!(&faulted, &baseline, "parallel scalar, threads {}", threads);

            let sliced_baseline = sim.run_operands_sliced(&operands);
            let sliced_faulted: Vec<_> = sim
                .run_operands_sliced_faulted(&operands, &empty, None)
                .into_iter()
                .collect::<Result<_, _>>()
                .expect("an empty plan cannot trip the watchdog");
            prop_assert_eq!(
                &sliced_faulted,
                &sliced_baseline,
                "parallel sliced, threads {}",
                threads
            );
        }
    }
}

// ---------------------------------------------------------------------
// Wavefront-pipelined four-phase driving: overlapped trains decode to
// the serial driver's exact tokens, sharding is thread-invariant, and
// every hazard path is a typed error, never a wrong vote
// ---------------------------------------------------------------------

proptest! {
    // Each case profiles and replays full dual-rail trains at three
    // occupancy levels, so run few cases.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A wavefront-pipelined train decodes to the streamed contract
    /// driver's exact tokens at every occupancy: decoded outputs,
    /// one-of-n votes, probes and all three latency figures are
    /// bit-identical (the decode comes from the serial profile pass, so
    /// this is equality, not tolerance), occupancy 1 delegates to the
    /// serial cycle outright (full `OperandResult` equality, cycle
    /// times included), and overlapping at occupancy >= 2 strictly
    /// shrinks the train makespan below the serial cycle total.
    #[test]
    fn pipelined_train_matches_serial_at_every_occupancy(
        seed in 0u64..10_000,
        operands in 2usize..12,
    ) {
        use tm_async::datapath::InferenceWorkload;
        use tm_async::dualrail::{Occupancy, PipelineConfig, PipelinedProtocolDriver};

        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();
        let operand_bits = workload.dual_rail_operands(&datapath).expect("widths");

        let mut streamed = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
        let snapshot = streamed.quiescent_snapshot();
        streamed.enable_reset_contract(snapshot);
        let expected: Vec<_> = operand_bits
            .iter()
            .map(|operand| streamed.apply_operand(operand).expect("protocol cycle"))
            .collect();
        let serial_total: f64 = expected.iter().map(|r| r.cycle_time_ps).sum();

        for occupancy in [Occupancy::One, Occupancy::Two, Occupancy::Max] {
            let mut pipelined = PipelinedProtocolDriver::new(
                datapath.circuit(),
                &library,
                PipelineConfig { occupancy, ..PipelineConfig::default() },
            )
            .expect("pipelined driver");
            let got = pipelined.run_train(&operand_bits).expect("pipelined train");
            if occupancy == Occupancy::One {
                prop_assert_eq!(&got, &expected, "occupancy 1 must delegate to the serial cycle");
                continue;
            }
            prop_assert_eq!(got.len(), expected.len());
            for (k, (g, e)) in got.iter().zip(&expected).enumerate() {
                // Everything but the cycle time is bit-identical; the
                // pipelined cycle time is the injection-to-injection
                // interval, not the serial round trip.
                let mut patched = g.clone();
                patched.cycle_time_ps = e.cycle_time_ps;
                prop_assert_eq!(&patched, e, "{:?} token {}", occupancy, k);
            }
            let pipelined_total: f64 = got.iter().map(|r| r.cycle_time_ps).sum();
            prop_assert!(
                pipelined_total < serial_total,
                "{:?} makespan {} ps must beat the serial total {} ps",
                occupancy,
                pipelined_total,
                serial_total
            );
        }
    }

    /// Sharding pipelined trains changes nothing: at thread counts
    /// {1, 2, 7}, the scalar and 64-wide bit-sliced pipelined workload
    /// runners reproduce their occupancy-1 runs bit-identically against
    /// the unpipelined sharded runners, and the overlapped runs are
    /// bit-identical across thread counts and decode-equal to the
    /// serial references (trains are position-chunked pure functions of
    /// their own operands).
    #[test]
    fn sharded_pipelined_runs_are_thread_invariant_and_serial(
        seed in 0u64..10_000,
        operands in 2usize..12,
    ) {
        use tm_async::datapath::InferenceWorkload;
        use tm_async::dualrail::{Occupancy, ParallelProtocolDriver, PipelineConfig};

        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();
        let operand_bits = workload.dual_rail_operands(&datapath).expect("widths");

        // Unpipelined sharded references (thread-invariant by the
        // sharding property above) and single-threaded pipelined
        // references for the cross-thread comparison.
        let reference =
            ParallelProtocolDriver::new(datapath.circuit(), &library, 1).expect("driver");
        let serial = reference.run_workload(&operand_bits).expect("serial run");
        let serial_sliced = reference
            .run_workload_sliced(&operand_bits)
            .expect("serial sliced run");
        // train_length 4 forces multiple trains per run for most cases.
        let overlapped = [Occupancy::Two, Occupancy::Max].map(|occupancy| PipelineConfig {
            occupancy,
            train_length: 4,
            ..PipelineConfig::default()
        });
        let scalar_refs = overlapped.map(|cfg| {
            reference
                .run_workload_pipelined(&operand_bits, cfg)
                .expect("pipelined run")
        });
        let sliced_refs = overlapped.map(|cfg| {
            reference
                .run_workload_pipelined_sliced(&operand_bits, cfg)
                .expect("sliced pipelined run")
        });
        for (cfg, (run, report)) in overlapped.iter().zip(&scalar_refs) {
            for (k, (g, e)) in run.results.iter().zip(&serial.results).enumerate() {
                let mut patched = g.clone();
                patched.cycle_time_ps = e.cycle_time_ps;
                prop_assert_eq!(&patched, e, "{:?} token {}", cfg.occupancy, k);
            }
            prop_assert!(report.occupancy >= 2, "{:?}", cfg.occupancy);
            prop_assert_eq!(report.tokens, operand_bits.len());
        }
        // The sliced wavefront attributes measured event times against
        // an absolute schedule, so its latencies carry ulp-level float
        // drift relative to the per-word-rebased serial driver; bound
        // it at the replay window epsilon.  Decoded values stay exact,
        // and `done` is only resolved below full occupancy (at Max the
        // completion wavefronts of neighbouring words may merge).
        const EPS_PS: f64 = 1e-6;
        for (cfg, (run, _)) in overlapped.iter().zip(&sliced_refs) {
            for (k, (g, e)) in run.results.iter().zip(&serial_sliced.results).enumerate() {
                prop_assert_eq!(&g.outputs, &e.outputs, "sliced {:?} token {}", cfg.occupancy, k);
                prop_assert_eq!(&g.one_of_n, &e.one_of_n, "sliced {:?} token {}", cfg.occupancy, k);
                prop_assert_eq!(&g.probes, &e.probes, "sliced {:?} token {}", cfg.occupancy, k);
                prop_assert!(
                    (g.s_to_v_latency_ps - e.s_to_v_latency_ps).abs() < EPS_PS,
                    "sliced {:?} token {} s->v {} vs {}",
                    cfg.occupancy,
                    k,
                    g.s_to_v_latency_ps,
                    e.s_to_v_latency_ps
                );
                prop_assert!(
                    (g.v_to_s_latency_ps - e.v_to_s_latency_ps).abs() < EPS_PS,
                    "sliced {:?} token {} v->s {} vs {}",
                    cfg.occupancy,
                    k,
                    g.v_to_s_latency_ps,
                    e.v_to_s_latency_ps
                );
                match (g.done_latency_ps, e.done_latency_ps) {
                    (Some(gd), Some(ed)) => prop_assert!(
                        (gd - ed).abs() < EPS_PS,
                        "sliced {:?} token {} done {} vs {}",
                        cfg.occupancy,
                        k,
                        gd,
                        ed
                    ),
                    (None, _) => prop_assert_eq!(
                        cfg.occupancy,
                        Occupancy::Max,
                        "done may only merge at full occupancy"
                    ),
                    (Some(_), None) => prop_assert!(
                        false,
                        "sliced {:?} token {} resolved done the serial driver did not",
                        cfg.occupancy,
                        k
                    ),
                }
            }
        }

        let one = PipelineConfig {
            occupancy: Occupancy::One,
            train_length: 4,
            ..PipelineConfig::default()
        };
        for threads in [1usize, 2, 7] {
            let driver = ParallelProtocolDriver::new(datapath.circuit(), &library, threads)
                .expect("driver");
            // Occupancy 1: fully bit-identical to the unpipelined
            // sharded runs, cycle times included.
            let (run1, report1) = driver
                .run_workload_pipelined(&operand_bits, one)
                .expect("occupancy-1 run");
            prop_assert_eq!(&run1.results, &serial.results, "threads {}", threads);
            prop_assert_eq!(report1.occupancy, 1);
            let (sliced1, _) = driver
                .run_workload_pipelined_sliced(&operand_bits, one)
                .expect("occupancy-1 sliced run");
            prop_assert_eq!(&sliced1.results, &serial_sliced.results, "threads {}", threads);
            // Overlapped: bit-identical to the single-threaded
            // pipelined runs at every thread count.
            for (cfg, (reference_run, _)) in overlapped.iter().zip(&scalar_refs) {
                let (run, _) = driver
                    .run_workload_pipelined(&operand_bits, *cfg)
                    .expect("pipelined run");
                prop_assert_eq!(
                    &run.results,
                    &reference_run.results,
                    "{:?} threads {}",
                    cfg.occupancy,
                    threads
                );
            }
            for (cfg, (reference_run, _)) in overlapped.iter().zip(&sliced_refs) {
                let (run, _) = driver
                    .run_workload_pipelined_sliced(&operand_bits, *cfg)
                    .expect("sliced pipelined run");
                prop_assert_eq!(
                    &run.results,
                    &reference_run.results,
                    "sliced {:?} threads {}",
                    cfg.occupancy,
                    threads
                );
            }
        }
    }

    /// A stuck-at fault never silently corrupts a neighbouring in-flight
    /// token: the faulted pipelined train either errors with a typed
    /// violation (detected / timed out) or returns exactly the faulted
    /// serial driver's tokens — it never decodes a vote the serial
    /// faulted driver would not have produced.  The fault site ranges
    /// over input rails of both polarities and both stuck values, which
    /// covers spacer-starved handshakes, forged codewords and silently
    /// flipped-but-valid inputs.
    #[test]
    fn faulted_pipelined_train_never_silently_corrupts_a_neighbour(
        seed in 0u64..10_000,
        operands in 2usize..8,
        input_index in 0usize..6,
        negative_rail: bool,
        stuck_value: bool,
    ) {
        use tm_async::datapath::InferenceWorkload;
        use tm_async::dualrail::{Occupancy, PipelineConfig, PipelinedProtocolDriver};
        use tm_async::gatesim::FaultPlan;

        let config = DatapathConfig::new(3, 2).expect("valid");
        let workload = InferenceWorkload::random(&config, operands, 0.7, seed).expect("workload");
        let datapath = DualRailDatapath::generate(&config).expect("generation");
        let library = Library::umc_ll();
        let operand_bits = workload.dual_rail_operands(&datapath).expect("widths");

        let inputs = datapath.circuit().dual_inputs();
        let signal = inputs[input_index % inputs.len()].1;
        let net = if negative_rail { signal.negative } else { signal.positive };
        let plan = FaultPlan::new().stuck_at(net, stuck_value);
        const HORIZON_PS: f64 = 1.0e6;

        // Faulted serial reference: one streamed contract driver with
        // the same plan, one Result per operand.
        let mut streamed = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
        let snapshot = streamed.quiescent_snapshot();
        streamed.enable_reset_contract(snapshot);
        streamed.set_time_horizon_ps(HORIZON_PS);
        if streamed.set_fault_plan(&plan).is_err() {
            // The faulted circuit cannot even settle; the pipelined
            // driver must refuse identically.
            let mut pipelined = PipelinedProtocolDriver::new(
                datapath.circuit(),
                &library,
                PipelineConfig::default(),
            )
            .expect("pipelined driver");
            pipelined.set_time_horizon_ps(HORIZON_PS);
            prop_assert!(pipelined.set_fault_plan(&plan).is_err());
        } else {
            let serial: Vec<_> = operand_bits
                .iter()
                .map(|operand| streamed.apply_operand(operand))
                .collect();

            for occupancy in [Occupancy::Two, Occupancy::Max] {
                let mut pipelined = PipelinedProtocolDriver::new(
                    datapath.circuit(),
                    &library,
                    PipelineConfig { occupancy, ..PipelineConfig::default() },
                )
                .expect("pipelined driver");
                pipelined.set_time_horizon_ps(HORIZON_PS);
                pipelined
                    .set_fault_plan(&plan)
                    .expect("the serial driver settled under this plan");
                match pipelined.run_train(&operand_bits) {
                    // Detected or timed out: a typed error is always an
                    // acceptable fault response.
                    Err(_) => {}
                    // Completed: every token must match the faulted
                    // serial driver bit-for-bit — in particular the
                    // train cannot complete at all if the serial driver
                    // rejected any token.
                    Ok(got) => {
                        for (k, (g, e)) in got.iter().zip(&serial).enumerate() {
                            let e = e.as_ref().unwrap_or_else(|error| {
                                panic!(
                                    "{occupancy:?} token {k} decoded under a fault the \
                                     serial driver rejects with {error:?}"
                                )
                            });
                            let mut patched = g.clone();
                            patched.cycle_time_ps = e.cycle_time_ps;
                            prop_assert_eq!(&patched, e, "{:?} faulted token {}", occupancy, k);
                        }
                    }
                }
            }
        }
    }
}

/// Premature injection is a typed hazard, never a wrong vote: with the
/// `gate_injection` test hook off, the replay pass injects each operand
/// without waiting for the input stage to acknowledge the predecessor's
/// spacer — and without ever driving the spacer — so the wavefront
/// tramples in-flight state.  Both the scalar and the sliced drivers
/// must reject the train with [`DualRailError::ProtocolViolation`]
/// instead of decoding anything.
#[test]
fn premature_injection_is_a_typed_protocol_violation() {
    use tm_async::datapath::InferenceWorkload;
    use tm_async::dualrail::{
        DualRailError, Occupancy, ParallelProtocolDriver, PipelineConfig, PipelinedProtocolDriver,
    };

    let config = DatapathConfig::new(3, 2).expect("valid");
    let workload = InferenceWorkload::random(&config, 4, 0.7, 2021).expect("workload");
    let datapath = DualRailDatapath::generate(&config).expect("generation");
    let library = Library::umc_ll();
    let operand_bits = workload.dual_rail_operands(&datapath).expect("widths");
    let ungated = PipelineConfig {
        occupancy: Occupancy::Two,
        gate_injection: false,
        ..PipelineConfig::default()
    };

    let mut pipelined =
        PipelinedProtocolDriver::new(datapath.circuit(), &library, ungated).expect("driver");
    match pipelined.run_train(&operand_bits) {
        Err(DualRailError::ProtocolViolation { description }) => {
            assert!(
                description.contains("hazard"),
                "the violation must name the wavefront hazard: {description}"
            );
        }
        other => panic!("ungated injection must be a typed violation, got {other:?}"),
    }

    // The sharded entry points surface the same typed error.
    let driver = ParallelProtocolDriver::new(datapath.circuit(), &library, 2).expect("driver");
    assert!(matches!(
        driver.run_workload_pipelined(&operand_bits, ungated),
        Err(DualRailError::ProtocolViolation { .. })
    ));
    assert!(matches!(
        driver.run_workload_pipelined_sliced(&operand_bits, ungated),
        Err(DualRailError::ProtocolViolation { .. })
    ));
}

/// The watchdog contract carries over to pipelined trains: a horizon
/// generous enough for every healthy token turns a delay-faulted train
/// into a typed [`DualRailError::SimulationDiverged`] instead of an
/// unbounded settle — `run_train` always returns.
#[test]
fn watchdog_horizon_bounds_a_faulted_pipelined_settle() {
    use tm_async::datapath::InferenceWorkload;
    use tm_async::dualrail::{DualRailError, Occupancy, PipelineConfig, PipelinedProtocolDriver};
    use tm_async::gatesim::FaultPlan;

    let config = DatapathConfig::new(3, 2).expect("valid");
    let workload = InferenceWorkload::random(&config, 3, 0.7, 7).expect("workload");
    let datapath = DualRailDatapath::generate(&config).expect("generation");
    let library = Library::umc_ll();
    let operand_bits = workload.dual_rail_operands(&datapath).expect("widths");

    // Healthy cycle time, to pick a horizon that passes fault-free.
    let mut streamed = ProtocolDriver::new(datapath.circuit(), &library).expect("driver");
    let snapshot = streamed.quiescent_snapshot();
    streamed.enable_reset_contract(snapshot);
    let healthy_cycle_ps = streamed
        .apply_operand(&operand_bits[0])
        .expect("healthy cycle")
        .cycle_time_ps;
    let horizon_ps = 4.0 * healthy_cycle_ps;

    let pipeline_config = PipelineConfig {
        occupancy: Occupancy::Two,
        ..PipelineConfig::default()
    };
    let mut healthy = PipelinedProtocolDriver::new(datapath.circuit(), &library, pipeline_config)
        .expect("driver");
    healthy.set_time_horizon_ps(horizon_ps);
    healthy
        .run_train(&operand_bits)
        .expect("the horizon must admit every healthy token");

    // Slow every gate 100x: each token now needs far more than the
    // horizon to settle, so the watchdog must trip with a typed error.
    let plan = datapath
        .circuit()
        .netlist()
        .cells()
        .fold(FaultPlan::new(), |plan, (cell, _)| {
            plan.scale_delay(cell, 100.0)
        });
    let mut faulted = PipelinedProtocolDriver::new(datapath.circuit(), &library, pipeline_config)
        .expect("driver");
    faulted.set_time_horizon_ps(horizon_ps);
    faulted
        .set_fault_plan(&plan)
        .expect("a quiescent circuit settles under pure delay faults");
    assert!(matches!(
        faulted.run_train(&operand_bits),
        Err(DualRailError::SimulationDiverged)
    ));
}
