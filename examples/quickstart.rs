//! Quickstart: build a small dual-rail inference datapath, push one
//! operand through the four-phase handshake and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use std::error::Error;

use tm_async::celllib::Library;
use tm_async::datapath::{reference, DatapathConfig, DualRailDatapath};
use tm_async::dualrail::ProtocolDriver;
use tm_async::netlist::NetlistStats;
use tm_async::tsetlin::ExcludeMasks;

fn main() -> Result<(), Box<dyn Error>> {
    // A small datapath: 4 Boolean features, 4 clauses per voting polarity.
    let config = DatapathConfig::new(4, 4)?;
    let datapath = DualRailDatapath::generate(&config)?;
    let stats = NetlistStats::of(datapath.netlist());
    println!("generated dual-rail datapath: {stats}");

    // Hand-crafted clause configuration:
    //   positive clauses vote for "f0 AND NOT f1", negative for "f2".
    let mut positive = vec![vec![true; config.literals_per_clause()]; 4];
    positive[0][0] = false; // include literal f0
    positive[0][3] = false; // include literal !f1
    positive[1][0] = false;
    let mut negative = vec![vec![true; config.literals_per_clause()]; 4];
    negative[0][4] = false; // include literal f2
    let masks = ExcludeMasks::from_raw(positive, negative, config.features());

    let features = vec![true, false, false, true];
    let golden = reference::infer(&masks, &features);
    println!(
        "golden model: {} positive vs {} negative votes -> {:?}",
        golden.positive_votes, golden.negative_votes, golden.decision
    );

    // Drive the circuit through one spacer/valid/spacer cycle.
    let library = Library::umc_ll();
    let mut driver = ProtocolDriver::new(datapath.circuit(), &library)?;
    let operand = datapath.operand_bits(&features, &masks)?;
    let result = driver.apply_operand(&operand)?;
    let decision = datapath.decode_decision(&result)?;

    println!(
        "hardware decision: {decision:?} (in class: {})",
        datapath.decode_in_class(&result)?
    );
    println!(
        "spacer->valid latency: {:.0} ps, valid->spacer reset: {:.0} ps, done after {:.0} ps",
        result.s_to_v_latency_ps,
        result.v_to_s_latency_ps,
        result.done_latency_ps.unwrap_or(f64::NAN)
    );
    if let Some(grace) = driver.grace_period() {
        println!(
            "reduced-CD grace period: t_int = {:.0} ps, t_io = {:.0} ps, t_d = {:.0} ps",
            grace.t_int_ps(),
            grace.t_io_ps(),
            grace.t_d_ps()
        );
    }
    assert_eq!(
        decision, golden.decision,
        "hardware must match the golden model"
    );
    Ok(())
}
