//! End-to-end serving scenario: train a Tsetlin machine, stand up the
//! micro-batching inference server over the 64-lane batch engine, and
//! drive it with three traffic shapes — a Poisson stream below
//! saturation, a bursty stream at the knee, and a deliberate 2x
//! overload — comparing the block and shed admission policies on the
//! overload.
//!
//! Run with: `cargo run --release --example serving`

use std::error::Error;

use tm_async::datapath::{BatchGoldenModel, DatapathConfig, InferenceWorkload};
use tm_async::serve::{AdmissionPolicy, BatchBackend, ServeConfig, Server, ServiceModel, Trace};
use tm_async::tsetlin::{datasets, TrainingParams, TsetlinMachine};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Train the classifier and freeze it into the batched golden
    //    model; the held-out test set becomes the request population.
    let features = 12;
    let data = datasets::keyword_patterns(400, features, 0.08, 7);
    let params = TrainingParams::new(8, 12.0, 3.5)?;
    let mut machine = TsetlinMachine::new(features, params, 99)?;
    machine.fit(data.train_inputs(), data.train_labels(), 25);
    let config = DatapathConfig::new(features, 8)?;
    let model = BatchGoldenModel::generate(&config)?;
    let workload = InferenceWorkload::from_machine(&config, &machine, data.test_inputs())?;
    println!(
        "request population: {} held-out samples (accuracy {:.3})",
        workload.len(),
        machine.accuracy(data.test_inputs(), data.test_labels())
    );

    // 2. Measure this host's serving capacity with a closed loop: 256
    //    clients keep the 64-lane batches full.
    let serve_config = ServeConfig {
        max_wait_ns: 50_000, // flush a partial batch after 50 µs
        ..ServeConfig::default()
    };
    let backend = BatchBackend::new(&model, workload.masks().clone())?;
    let mut server = Server::new(backend, &workload, serve_config)?;
    let capacity = server.run_closed(256, 4096, 0)?;
    let capacity_qps = capacity.achieved_qps();
    println!(
        "\nclosed-loop capacity: {:.2}M requests/s (mean batch {:.1} lanes)",
        capacity_qps / 1e6,
        capacity.mean_batch_size()
    );

    // 3. A Poisson stream at half capacity: everything is served, the
    //    queueing tail is the price of batching (bounded by max_wait).
    let relaxed = server.run(&Trace::poisson(4096, capacity_qps * 0.5, 11))?;
    println!("\n0.5x capacity, poisson:\n  {}", relaxed.summary());
    assert_eq!(relaxed.shed_count(), 0);

    // 4. Bursts of 32 at the knee: the lanes-full rule absorbs bursts
    //    into full batches instead of deadline-waiting.
    let bursty = server.run(&Trace::bursty(4096, 32, capacity_qps, 13))?;
    println!("\n1.0x capacity, bursts of 32:\n  {}", bursty.summary());

    // 5. 2x overload, shed vs block: shedding bounds the queueing tail
    //    and counts the drops; blocking serves everything but lets the
    //    queueing delay grow without bound.
    let overload = Trace::poisson(4096, capacity_qps * 2.0, 17);
    let shed_run = server.run(&overload)?;
    println!("\n2.0x capacity, shed policy:\n  {}", shed_run.summary());

    let backend = BatchBackend::new(&model, workload.masks().clone())?;
    let mut blocking = Server::new(
        backend,
        &workload,
        ServeConfig {
            policy: AdmissionPolicy::Block,
            ..serve_config
        },
    )?;
    let block_run = blocking.run(&overload)?;
    println!("2.0x capacity, block policy:\n  {}", block_run.summary());
    assert_eq!(block_run.shed_count(), 0);

    // 6. The same queueing system under a fixed service model is fully
    //    deterministic — rerunning reproduces the report bit for bit.
    let deterministic = ServeConfig {
        service_model: ServiceModel::Fixed {
            batch_ns: 500,
            per_request_ns: 100,
        },
        ..serve_config
    };
    let backend = BatchBackend::new(&model, workload.masks().clone())?;
    let mut fixed = Server::new(backend, &workload, deterministic)?;
    let trace = Trace::poisson(2048, 1e6, 19);
    let first = fixed.run(&trace)?;
    assert_eq!(fixed.run(&trace)?, first);
    println!(
        "\nfixed service model replay: deterministic ({} served, queue p99 {:.0} ns)",
        first.served_count(),
        first.summary().queue_p99_ns
    );

    Ok(())
}
