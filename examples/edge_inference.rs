//! End-to-end edge-inference scenario: train a Tsetlin machine on a
//! keyword-spotting-like task, freeze its include/exclude decisions into
//! the dual-rail datapath and run the held-out test set through the
//! asynchronous hardware, reporting accuracy and the latency
//! distribution.
//!
//! Run with: `cargo run --release --example edge_inference`

use std::error::Error;

use tm_async::celllib::{Library, PowerBreakdown};
use tm_async::datapath::{
    BatchGoldenModel, DatapathConfig, DualRailDatapath, EventDrivenInference, InferenceWorkload,
};
use tm_async::dualrail::{ProtocolDriver, ThroughputReport};
use tm_async::tsetlin::{datasets, TrainingParams, TsetlinMachine};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Train the classifier in software.
    let features = 12;
    let data = datasets::keyword_patterns(400, features, 0.08, 7);
    let params = TrainingParams::new(8, 12.0, 3.5)?;
    let mut machine = TsetlinMachine::new(features, params, 99)?;
    machine.fit(data.train_inputs(), data.train_labels(), 25);
    let software_accuracy = machine.accuracy(data.test_inputs(), data.test_labels());
    println!("software test accuracy: {software_accuracy:.3}");

    // 2. Freeze the automata decisions into the hardware datapath.
    let config = DatapathConfig::new(features, 8)?;
    let datapath = DualRailDatapath::generate(&config)?;
    let workload = InferenceWorkload::from_machine(&config, &machine, data.test_inputs())?;

    // 3. Run the test set through the asynchronous hardware.
    let library = Library::umc_ll();
    let mut driver = ProtocolDriver::new(datapath.circuit(), &library)?;
    let operands = workload.dual_rail_operands(&datapath)?;

    let mut correct_vs_labels = 0usize;
    let mut matches_golden = 0usize;
    let mut results = Vec::new();
    for ((operand, expected), label) in operands
        .iter()
        .zip(workload.expected())
        .zip(data.test_labels())
    {
        let result = driver.apply_operand(operand)?;
        let in_class = datapath.decode_in_class(&result)?;
        if in_class == *label {
            correct_vs_labels += 1;
        }
        if datapath.decode_decision(&result)? == expected.decision {
            matches_golden += 1;
        }
        results.push(result);
    }

    let report = ThroughputReport::from_results(&results);
    let power = PowerBreakdown::compute(datapath.netlist(), &library, &driver.activity_profile());

    println!(
        "hardware accuracy: {:.3} ({} / {} operands)",
        correct_vs_labels as f64 / operands.len() as f64,
        correct_vs_labels,
        operands.len()
    );
    println!(
        "hardware/golden agreement: {} / {} operands",
        matches_golden,
        operands.len()
    );
    println!(
        "latency: avg {:.0} ps, max {:.0} ps, reset {:.0} ps, throughput {:.0} M inferences/s",
        report.average_latency_ps(),
        report.max_latency_ps(),
        report.v_to_s_ps(),
        report.inferences_per_second_millions()
    );
    println!(
        "average power: {:.1} uW (leakage {:.2} uW)",
        power.total_uw(),
        power.leakage_uw
    );
    println!("\nlatency histogram:");
    for (edge, count) in report.latency_stats().histogram(8) {
        println!("  < {edge:6.0} ps : {}", "*".repeat(count));
    }

    // 4. The same workload at bulk scale: the combinational golden model
    //    on the event-driven simulator, operands sharded across worker
    //    threads (bit-identical to a streamed single instance at any
    //    thread count).  Each operand's injection->settle time is the
    //    data-dependent latency the asynchronous design exploits.
    let model = BatchGoldenModel::generate(&config)?;
    let threads = tm_async::exec::available_parallelism();
    let event = EventDrivenInference::new(&model, &library, threads);
    let run = event.run_workload(&workload)?;
    assert_eq!(
        &run.outcomes,
        workload.expected(),
        "event-driven outcomes must match the golden model"
    );
    println!(
        "\nsharded event-driven golden model ({} threads, {} operands):",
        threads,
        run.latency.count()
    );
    println!(
        "per-operand latency: min {:.0} ps, median {:.0} ps, max {:.0} ps",
        run.latency.min_ps(),
        run.latency.median_ps(),
        run.latency.max_ps()
    );
    Ok(())
}
