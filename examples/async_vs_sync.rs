//! Side-by-side comparison of the proposed dual-rail asynchronous
//! datapath and the synchronous single-rail baseline on the same trained
//! model and the same operands — a miniature, single-library version of
//! Table I.
//!
//! Run with: `cargo run --release --example async_vs_sync`

use std::error::Error;

use tm_async::celllib::{Library, PowerBreakdown};
use tm_async::datapath::{DatapathConfig, DualRailDatapath, InferenceWorkload, SingleRailDatapath};
use tm_async::dualrail::{ProtocolDriver, ThroughputReport};
use tm_async::gatesim::run_synchronous_vectors;
use tm_async::sta::ClockPeriod;

fn main() -> Result<(), Box<dyn Error>> {
    let config = DatapathConfig::new(10, 8)?;
    let workload = InferenceWorkload::random(&config, 20, 0.72, 11)?;
    let library = Library::umc_ll();

    // --- synchronous baseline ---------------------------------------
    let single = SingleRailDatapath::generate(&config)?;
    let clock = ClockPeriod::compute(single.netlist(), &library)?;
    let sync_operands = workload.single_rail_operands(&single)?;
    let mut vectors = Vec::new();
    for operand in &sync_operands {
        for _ in 0..3 {
            vectors.push(operand.clone());
        }
    }
    let sync_run = run_synchronous_vectors(single.netlist(), &library, clock.period_ps(), &vectors);
    let sync_power = PowerBreakdown::compute(single.netlist(), &library, &sync_run.activity);

    // --- dual-rail asynchronous design -------------------------------
    let dual = DualRailDatapath::generate(&config)?;
    let mut driver = ProtocolDriver::new(dual.circuit(), &library)?;
    let mut results = Vec::new();
    for operand in workload.dual_rail_operands(&dual)? {
        results.push(driver.apply_operand(&operand)?);
    }
    let report = ThroughputReport::from_results(&results);
    let dual_power = PowerBreakdown::compute(dual.netlist(), &library, &driver.activity_profile());

    println!("metric                         single-rail      dual-rail");
    println!(
        "cell area (um^2)             {:>12.0} {:>14.0}",
        library.total_area_um2(single.netlist()),
        library.total_area_um2(dual.netlist())
    );
    println!(
        "sequential area (um^2)       {:>12.0} {:>14.0}",
        library.sequential_area_um2(single.netlist()),
        library.sequential_area_um2(dual.netlist())
    );
    println!(
        "latency avg (ps)             {:>12.0} {:>14.0}",
        clock.period_ps(),
        report.average_latency_ps()
    );
    println!(
        "latency max (ps)             {:>12.0} {:>14.0}",
        clock.period_ps(),
        report.max_latency_ps()
    );
    println!(
        "throughput (M inf/s)         {:>12.0} {:>14.0}",
        clock.inferences_per_second_millions(),
        report.inferences_per_second_millions()
    );
    println!(
        "average power (uW)           {:>12.1} {:>14.1}",
        sync_power.total_uw(),
        dual_power.total_uw()
    );
    println!(
        "leakage (nW)                 {:>12.1} {:>14.1}",
        library.total_leakage_nw(single.netlist()),
        library.total_leakage_nw(dual.netlist())
    );
    println!(
        "\nlatency advantage of the asynchronous design: {:.2}x on average",
        clock.period_ps() / report.average_latency_ps()
    );
    Ok(())
}
