//! Observability tour (PR 10): instrument an inference run with the
//! metrics registry and print the snapshot, capture a four-phase
//! dual-rail handshake as a VCD waveform (openable in GTKWave), and
//! export one serving session as Chrome-trace JSON (openable in
//! `chrome://tracing` or Perfetto).
//!
//! Run with: `cargo run --release --example observability`
//!
//! Pass an output directory to also write the artifacts:
//! `cargo run --release --example observability -- /tmp/obs`

use std::error::Error;
use std::sync::Arc;

use tm_async::celllib::Library;
use tm_async::datapath::{
    BatchGoldenModel, DatapathConfig, DualRailDatapath, DualRailInference, EventDrivenInference,
    InferenceWorkload,
};
use tm_async::dualrail::ProtocolDriver;
use tm_async::obs::MetricsRegistry;
use tm_async::serve::{BatchBackend, ServeConfig, Server, ServiceModel, Trace, TraceRecorder};

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir = std::env::args().nth(1);
    let config = DatapathConfig::new(6, 4)?;
    let workload = InferenceWorkload::random(&config, 48, 0.7, 2021)?;
    let library = Library::umc_ll();
    let model = BatchGoldenModel::generate(&config)?;
    let datapath = DualRailDatapath::generate(&config)?;

    // 1. Metrics: route every engine's internal counters into one
    //    shared registry.  Counting only happens while attached — the
    //    same run with no registry is bit-identical and pays nothing —
    //    and the snapshot is bit-identical at any thread count.
    let registry = Arc::new(MetricsRegistry::new());
    let mut event = EventDrivenInference::new(&model, &library, 2);
    event.set_metrics(&registry, "event");
    let run = event.run_workload(&workload)?;
    assert_eq!(run.outcomes.as_slice(), workload.expected());
    let mut dual = DualRailInference::new(&datapath, &library, 2)?;
    dual.set_metrics(&registry, "dualrail");
    let run = dual.run_workload(&workload)?;
    assert_eq!(run.outcomes.as_slice(), workload.expected());

    let snapshot = registry.snapshot();
    println!("engine metrics after both runs:\n{}", snapshot.render());
    assert!(snapshot.counter("event.scalar.events_popped") > 0);
    assert!(snapshot.counter("dualrail.scalar.protocol.cycles") > 0);

    // 2. Waveform: record one four-phase handshake cycle.  The probe
    //    watches the comparator's 1-of-n rails, `done`, and each
    //    watched dual-rail pair as a 2-bit codeword vector (b00 spacer,
    //    b10 → 1, b01 → 0), timestamped in simulated femtoseconds.
    let mut driver = ProtocolDriver::new(datapath.circuit(), &library)?;
    let mut probe = driver.output_wave_probe();
    for (name, signal) in datapath.circuit().dual_inputs().iter().take(2) {
        probe.watch_pair(name, signal.positive.index(), signal.negative.index());
    }
    driver.attach_wave_probe(probe);
    let operand = datapath.operand_bits(&workload.feature_vectors()[0], workload.masks())?;
    driver.apply_operand(&operand)?;
    let vcd = driver
        .take_wave_probe()
        .expect("probe was attached")
        .to_vcd("dual_rail_datapath");
    let stats = tm_async::obs::vcd_is_well_formed(&vcd)?;
    println!(
        "captured handshake VCD: {} signals, {} timestamps",
        stats.signals, stats.timestamps
    );

    // 3. Serving trace: one micro-batched session on the virtual
    //    clock, every request's arrival → admit → flush → dispatch →
    //    complete recorded as Chrome-trace spans.
    let backend = BatchBackend::new(&model, workload.masks().clone())?;
    let mut server = Server::new(
        backend,
        &workload,
        ServeConfig {
            max_wait_ns: 5_000,
            service_model: ServiceModel::Fixed {
                batch_ns: 200,
                per_request_ns: 20,
            },
            ..ServeConfig::default()
        },
    )?;
    let mut recorder = TraceRecorder::new("observability-example");
    let report = server.run_traced(&Trace::poisson(128, 2e6, 2021), &mut recorder)?;
    let trace = recorder.to_json();
    tm_async::obs::json_is_well_formed(&trace)?;
    println!(
        "served {} requests ({} shed); trace JSON is {} bytes",
        report.served_count(),
        report.shed_count(),
        trace.len()
    );

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir)?;
        std::fs::write(format!("{dir}/handshake.vcd"), &vcd)?;
        std::fs::write(format!("{dir}/serve_trace.json"), &trace)?;
        std::fs::write(format!("{dir}/metrics.json"), snapshot.to_json())?;
        println!("wrote handshake.vcd, serve_trace.json, metrics.json to {dir}");
    }
    Ok(())
}
