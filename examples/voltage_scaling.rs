//! Voltage-scaling robustness demo (the scenario behind Figure 3): sweep
//! the FULL DIFFUSION supply from nominal 1.2 V into deep subthreshold
//! and show that the dual-rail datapath stays functionally correct while
//! its latency grows exponentially.
//!
//! Run with: `cargo run --release --example voltage_scaling`

use std::error::Error;

use tm_async::celllib::Library;
use tm_async::datapath::{DatapathConfig, DualRailDatapath, InferenceWorkload};
use tm_async::dualrail::ProtocolDriver;

fn main() -> Result<(), Box<dyn Error>> {
    let config = DatapathConfig::new(8, 8)?;
    let datapath = DualRailDatapath::generate(&config)?;
    let workload = InferenceWorkload::random(&config, 6, 0.7, 42)?;
    let operands = workload.dual_rail_operands(&datapath)?;
    let base = Library::full_diffusion();

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "Vdd (V)", "avg lat (ps)", "max lat (ps)", "energy/op", "correct"
    );
    for supply in [1.2, 1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25] {
        let library = base.with_supply_voltage(supply)?;
        let mut driver = ProtocolDriver::new(datapath.circuit(), &library)?;
        let mut stats = tm_async::gatesim::LatencyStats::new();
        let mut correct = true;
        for (operand, expected) in operands.iter().zip(workload.expected()) {
            let result = driver.apply_operand(operand)?;
            stats.record(result.s_to_v_latency_ps);
            correct &= datapath.decode_decision(&result)? == expected.decision;
        }
        // Energy per operation scales with CV^2 through the library model.
        let energy_per_op_fj: f64 = driver.total_transitions() as f64
            * library.cell_switch_energy_fj(tm_async::netlist::CellKind::Nand2)
            / operands.len() as f64;
        println!(
            "{supply:>8.2} {:>14.0} {:>14.0} {:>12.0} {:>12}",
            stats.average(),
            stats.maximum(),
            energy_per_op_fj,
            correct
        );
    }
    println!("\nfunctional correctness is maintained across the whole range; latency");
    println!("rises exponentially below the transistor threshold (~0.45 V), matching");
    println!("the shape of Figure 3 in the paper.");
    Ok(())
}
